//! The acceptance bar for batched serving: `/infer_batch` (and the
//! dispatcher's coalescing of queued `/infer` requests) must be
//! **bit-identical** to running each document through a sequential
//! `/infer` with the same per-index seeds — the shared φ gather is an
//! implementation detail, never an observable one. Plus the admission
//! pipeline's contract: per-document cache probes inside a batch, the
//! deadline path (`504`), and byte-parity between the epoll event loop
//! and the blocking fallback front end.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use topmine_corpus::{corpus_from_texts, CorpusOptions, Document};
use topmine_lda::{GroupedDocs, PhraseLda, TopicModelConfig};
use topmine_phrase::Segmenter;
use topmine_serve::{
    batch_inference_json, infer_doc, inference_json, FrontEnd, FrozenModel, HttpServer,
    InferConfig, ModelBackend, ModelHeader, PreparedDoc, PreprocessConfig, QueryEngine,
    ServerConfig, ShardedModel,
};

fn fitted_model() -> &'static FrozenModel {
    static MODEL: OnceLock<FrozenModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let texts: Vec<String> = (0..30)
            .flat_map(|i| {
                [
                    format!("mining frequent patterns in data streams {i}"),
                    format!("support vector machines for classification task {i}"),
                    format!("topic models for text corpora volume {i}"),
                ]
            })
            .collect();
        let corpus = corpus_from_texts(texts.iter().map(String::as_str));
        let (stats, seg) = Segmenter::with_params(5, 2.0).segment(&corpus);
        let grouped = GroupedDocs::from_segmentation(&corpus, &seg);
        let mut lda = PhraseLda::new(grouped, TopicModelConfig::new(3).with_seed(13));
        lda.run(30);
        FrozenModel::freeze(&corpus, &stats, 2.0, &lda, &CorpusOptions::default())
    })
}

const DOC_POOL: &[&str] = &[
    "support vector machines in the data streams",
    "a study of mining frequent patterns",
    "topic models, support vector machines",
    "completely unknown querywords here",
    "",
    "frequent patterns of topic models for classification",
];

/// One raw HTTP/1.1 request; returns (status, body).
fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String) {
    let (status, _headers, body) = request_full(addr, head, body);
    (status, body)
}

/// Like [`request`] but also returns the raw response head (for header
/// assertions).
fn request_full(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let message = format!(
        "{head} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (headers, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, headers, payload)
}

// ----- bit-identity: batched ≡ sequential ----------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any (shard count, batch composition, seed, iters): the amortized
    /// batch path returns exactly what N sequential single-document
    /// inferences with per-index seeds return — at every batch size and
    /// every shard count.
    #[test]
    fn amortized_batch_equals_sequential_inference(
        shard_idx in 0usize..4,
        doc_idx in proptest::collection::vec(0usize..6, 0..6),
        seed in 0u64..1_000_000,
        fold_iters in 1usize..30,
    ) {
        let shards = [1usize, 2, 3, 7][shard_idx];
        let frozen = fitted_model();
        let sharded = ShardedModel::from_frozen(frozen, shards).unwrap();
        let cfg = InferConfig { fold_iters, seed, top_topics: 3 };
        let docs: Vec<&str> = doc_idx.iter().map(|&i| DOC_POOL[i]).collect();
        // No response cache: every document must take the amortized path.
        let engine = QueryEngine::with_cache_capacity(Arc::new(sharded.clone()), 1, 0);
        let batched = engine.infer_batch_amortized(&docs, &cfg);
        prop_assert_eq!(batched.len(), docs.len());
        for (i, doc) in docs.iter().enumerate() {
            let alone = infer_doc(&sharded, doc, &cfg, cfg.seed_for_index(i));
            prop_assert_eq!(&batched[i], &alone);
        }
    }
}

// ----- HTTP: /infer_batch ≡ N sequential /infer ----------------------------

#[test]
fn infer_batch_endpoint_is_byte_identical_to_sequential_infers() {
    let frozen = fitted_model();
    let backend = Arc::new(ShardedModel::from_frozen(frozen, 3).unwrap());
    let engine = Arc::new(QueryEngine::new(backend.clone(), 1));
    let server = HttpServer::bind("127.0.0.1:0", engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    let docs = [
        "support vector machines in the data streams",
        "a study of mining frequent patterns",
        "completely unknown querywords here",
        "topic models for the frequent patterns",
    ];
    let cfg = InferConfig {
        fold_iters: 25,
        seed: 42,
        top_topics: 3,
    };
    let body = docs.join("\n");
    let (status, batch_body) = request(
        server.addr(),
        "POST /infer_batch?seed=42&iters=25&top=3",
        &body,
    );
    assert_eq!(status, 200, "{batch_body}");

    // Byte-exact against per-document fold-in with per-index seeds.
    let expected: Vec<_> = docs
        .iter()
        .enumerate()
        .map(|(i, doc)| infer_doc(backend.as_ref(), doc, &cfg, cfg.seed_for_index(i)))
        .collect();
    assert_eq!(batch_body, batch_inference_json(&expected));

    // And each entry equals a standalone `/infer` pinned to that index's
    // seed — the batch wrapper is pure packaging.
    for (i, doc) in docs.iter().enumerate() {
        let (status, single) = request(
            server.addr(),
            &format!("POST /infer?seed={}&iters=25&top=3", cfg.seed_for_index(i)),
            doc,
        );
        assert_eq!(status, 200, "{single}");
        assert_eq!(single, inference_json(&expected[i]));
        assert!(batch_body.contains(&single), "entry {i} not embedded");
    }

    // Malformed batches are refused before admission.
    let (status, err) = request(server.addr(), "POST /infer_batch", "\n  \n");
    assert_eq!(status, 400, "{err}");
    assert!(err.contains("empty batch"), "{err}");

    server.shutdown();
}

// ----- batch cache semantics: per-document probes --------------------------

/// `(hits, misses)` parsed from the `/healthz` cache counters.
fn cache_counters(addr: std::net::SocketAddr) -> (u64, u64) {
    let (status, body) = request(addr, "GET /healthz", "");
    assert_eq!(status, 200, "{body}");
    let field = |key: &str| -> u64 {
        body.split_once(&format!("\"{key}\":"))
            .and_then(|(_, rest)| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no {key} in {body}"))
    };
    (field("hits"), field("misses"))
}

#[test]
fn batch_documents_probe_the_cache_individually() {
    let frozen = fitted_model();
    let engine = Arc::new(QueryEngine::new(Arc::new(frozen.clone()), 1));
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = server.addr();

    let doc_x = "support vector machines in the data streams";
    let doc_y = "a study of mining frequent patterns";
    let cfg = InferConfig {
        seed: 5,
        ..InferConfig::default()
    };

    // Seed the cache with doc X through the single route.
    let (status, single_x) = request(addr, "POST /infer?seed=5", doc_x);
    assert_eq!(status, 200, "{single_x}");
    assert_eq!(cache_counters(addr), (0, 1));

    // A batch of [X, Y]: document 0 draws `seed_for_index(0)` == the
    // config seed, so it must HIT the entry the single request planted;
    // document 1 is a fresh miss folded in by the batch.
    let (status, batch) = request(
        addr,
        "POST /infer_batch?seed=5",
        &format!("{doc_x}\n{doc_y}"),
    );
    assert_eq!(status, 200, "{batch}");
    assert_eq!(cache_counters(addr), (1, 2), "mixed hit/miss batch");
    // Expected bodies computed off-engine (going through the engine here
    // would itself probe the cache and skew the counters under test).
    let expected = batch_inference_json(&[
        infer_doc(frozen, doc_x, &cfg, cfg.seed_for_index(0)),
        infer_doc(frozen, doc_y, &cfg, cfg.seed_for_index(1)),
    ]);
    assert_eq!(batch, expected);
    assert!(
        batch.contains(&single_x),
        "cached entry must be reused verbatim"
    );

    // The same batch again: every document hits, bodies stay identical.
    let (status, again) = request(
        addr,
        "POST /infer_batch?seed=5",
        &format!("{doc_x}\n{doc_y}"),
    );
    assert_eq!(status, 200);
    assert_eq!(again, batch);
    assert_eq!(cache_counters(addr), (3, 2), "all-hit batch");

    server.shutdown();
}

// ----- deadline expiry: 504 before dispatch --------------------------------

/// A backend whose φ gathers block until the test opens a gate, with an
/// arrivals counter so tests can wait until a dispatcher is provably
/// stuck inside inference.
struct GatedBackend {
    inner: Arc<FrozenModel>,
    state: Mutex<(usize, bool)>, // (arrivals, open)
    cv: Condvar,
}

impl GatedBackend {
    fn new(inner: Arc<FrozenModel>) -> Self {
        Self {
            inner,
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    fn arrive_and_wait(&self) {
        let mut state = self.state.lock().unwrap();
        state.0 += 1;
        self.cv.notify_all();
        while !state.1 {
            state = self.cv.wait(state).unwrap();
        }
    }

    /// Block until `n` gathers have arrived at the (closed) gate.
    fn wait_arrivals(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.0 < n {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        self.cv.notify_all();
    }
}

impl ModelBackend for GatedBackend {
    fn header(&self) -> &ModelHeader {
        self.inner.header()
    }
    fn preprocess(&self) -> &PreprocessConfig {
        ModelBackend::preprocess(self.inner.as_ref())
    }
    fn alpha(&self) -> &[f64] {
        ModelBackend::alpha(self.inner.as_ref())
    }
    fn format_tag(&self) -> &'static str {
        self.inner.format_tag()
    }
    fn n_lexicon_phrases(&self) -> usize {
        self.inner.n_lexicon_phrases()
    }
    fn prepare(&self, text: &str) -> PreparedDoc {
        self.inner.prepare(text)
    }
    fn segment(&self, doc: &Document) -> Vec<(u32, u32)> {
        ModelBackend::segment(self.inner.as_ref(), doc)
    }
    fn gather_phi(&self, words: &[u32]) -> Vec<f64> {
        self.arrive_and_wait();
        self.inner.gather_phi(words)
    }
    fn gather_phi_batch(&self, words: &[u32]) -> Vec<f64> {
        self.arrive_and_wait();
        self.inner.gather_phi_batch(words)
    }
    fn display_word(&self, id: u32) -> &str {
        self.inner.display_word(id)
    }
}

#[test]
fn requests_queued_past_their_deadline_get_504() {
    let backend = Arc::new(GatedBackend::new(Arc::new(fitted_model().clone())));
    // One dispatcher and max_batch=1: the second request cannot coalesce
    // with the first; it sits queued while the first blocks on the gate.
    let engine = Arc::new(QueryEngine::with_cache_capacity(
        Arc::clone(&backend) as Arc<dyn ModelBackend>,
        1,
        0,
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            n_threads: 1,
            max_batch: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    let blocker =
        std::thread::spawn(move || request(addr, "POST /infer", "support vector machines"));
    // The dispatcher is now provably inside the gated gather, so the next
    // request can only wait in the admission queue.
    backend.wait_arrivals(1);
    let doomed = std::thread::spawn(move || {
        request(
            addr,
            "POST /infer?deadline_ms=50",
            "mining frequent patterns",
        )
    });
    std::thread::sleep(std::time::Duration::from_millis(150));
    backend.open();

    let (status, body) = blocker.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = doomed.join().unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline expired"), "{body}");

    server.shutdown();
}

// ----- front-end parity: event loop ≡ blocking -----------------------------

#[test]
fn blocking_front_end_serves_byte_identical_responses() {
    let frozen = fitted_model();
    let servers: Vec<_> = [FrontEnd::EventLoop, FrontEnd::Blocking]
        .into_iter()
        .map(|front_end| {
            let engine = Arc::new(QueryEngine::new(Arc::new(frozen.clone()), 1));
            HttpServer::bind(
                "127.0.0.1:0",
                engine,
                ServerConfig {
                    front_end,
                    ..ServerConfig::default()
                },
            )
            .expect("bind")
            .spawn()
            .expect("spawn")
        })
        .collect();

    let doc = "support vector machines for the data streams";
    let batch = "support vector machines\nmining frequent patterns\n";
    for (head, body) in [
        ("GET /model", ""),
        ("POST /infer?seed=42&iters=25", doc),
        ("POST /infer_batch?seed=42&iters=25", batch),
        ("POST /infer?bogus=1", doc),
        ("GET /nowhere", ""),
    ] {
        let responses: Vec<_> = servers
            .iter()
            .map(|s| request(s.addr(), head, body))
            .collect();
        assert_eq!(
            responses[0], responses[1],
            "front ends diverged on {head:?}"
        );
    }
    for server in servers {
        server.shutdown();
    }
}
