//! Metrics smoke test: boot a server, drive a few requests through it,
//! then scrape `GET /metrics` and check the exposition is parseable and
//! carries the core serving series. Also pins the `/healthz` contract
//! (JSON content type, uptime, version, kernel fields).
//!
//! Everything lives in ONE `#[test]` on purpose: the obs registry is
//! process-global, so separate tests would see each other's samples.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use topmine_corpus::{corpus_from_texts, CorpusOptions};
use topmine_lda::{GroupedDocs, PhraseLda, TopicModelConfig};
use topmine_phrase::Segmenter;
use topmine_serve::{FrozenModel, HttpServer, QueryEngine, ServerConfig};

fn fitted_model() -> FrozenModel {
    let texts: Vec<String> = (0..30)
        .flat_map(|i| {
            [
                format!("mining frequent patterns in data streams {i}"),
                format!("support vector machines for classification {i}"),
            ]
        })
        .collect();
    let corpus = corpus_from_texts(texts.iter().map(String::as_str));
    let (stats, seg) = Segmenter::with_params(5, 2.0).segment(&corpus);
    let grouped = GroupedDocs::from_segmentation(&corpus, &seg);
    let mut lda = PhraseLda::new(grouped, TopicModelConfig::new(2).with_seed(3));
    lda.run(30);
    FrozenModel::freeze(&corpus, &stats, 2.0, &lda, &CorpusOptions::default())
}

/// One raw HTTP/1.1 request; returns (status, head, body).
fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let message = format!(
        "{head} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, payload) = response.split_once("\r\n\r\n").expect("blank line");
    (status, head.to_string(), payload.to_string())
}

/// Parse one exposition sample line into (series, value). `series` keeps
/// the label block, e.g. `topmine_http_requests_total{route="/infer",...}`.
fn parse_sample(line: &str) -> (String, f64) {
    let split_at = line
        .rfind(' ')
        .unwrap_or_else(|| panic!("no value in {line:?}"));
    let (series, value) = line.split_at(split_at);
    let value: f64 = match value.trim() {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}")),
    };
    (series.to_string(), value)
}

#[test]
fn scrape_is_parseable_and_carries_core_series() {
    let engine = Arc::new(QueryEngine::new(Arc::new(fitted_model()), 2));
    let handle = HttpServer::bind("127.0.0.1:0", engine, ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();

    // /healthz: JSON content type plus the new payload fields.
    let (status, head, body) = request(addr, "GET /healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/json"),
        "{head}"
    );
    assert!(body.contains("\"uptime_seconds\":"), "{body}");
    assert!(body.contains("\"version\":"), "{body}");
    assert!(body.contains("\"kernel_version\":"), "{body}");

    // Drive traffic through every stage: two identical /infer calls (miss
    // then cache hit), one 404, one bad request.
    let doc = "support vector machines for data streams";
    for _ in 0..2 {
        let (status, _, body) = request(addr, "POST /infer?seed=7&iters=10", doc);
        assert_eq!(status, 200, "{body}");
    }
    assert_eq!(request(addr, "GET /nope", "").0, 404);
    assert_eq!(request(addr, "POST /infer?seed=bad", "x").0, 400);

    // Scrape.
    let (status, head, text) = request(addr, "GET /metrics", "");
    assert_eq!(status, 200, "{text}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );

    // Every non-comment line must parse as `series value`.
    let mut samples = std::collections::HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = parse_sample(line);
        samples.insert(series, value);
    }
    assert!(!samples.is_empty(), "scrape produced no samples:\n{text}");

    let get = |series: &str| {
        *samples
            .get(series)
            .unwrap_or_else(|| panic!("missing series {series}:\n{text}"))
    };

    // Per-route/status counters saw exactly the traffic we sent. (The
    // /metrics request itself is counted after its response is written, so
    // this scrape can't see itself.)
    assert_eq!(
        get("topmine_http_requests_total{route=\"/infer\",status=\"200\"}"),
        2.0
    );
    assert_eq!(
        get("topmine_http_requests_total{route=\"/healthz\",status=\"200\"}"),
        1.0
    );
    assert_eq!(
        get("topmine_http_requests_total{route=\"other\",status=\"404\"}"),
        1.0
    );
    assert_eq!(
        get("topmine_http_requests_total{route=\"/infer\",status=\"400\"}"),
        1.0
    );

    // Per-stage histograms: one fold-in pass ran (the cache miss); the hit
    // went through cache lookup only. Parse ran for every request.
    assert_eq!(
        get("topmine_request_stage_seconds_count{stage=\"fold_in\"}"),
        1.0
    );
    assert_eq!(
        get("topmine_request_stage_seconds_count{stage=\"phi_gather\"}"),
        1.0
    );
    assert_eq!(
        get("topmine_request_stage_seconds_count{stage=\"cache_lookup\"}"),
        2.0
    );
    // Parse for this scrape itself is already recorded (it happens before
    // route dispatch); its serialize span lands after the body renders.
    assert!(get("topmine_request_stage_seconds_count{stage=\"parse\"}") >= 6.0);
    assert!(get("topmine_request_stage_seconds_count{stage=\"serialize\"}") >= 5.0);
    assert!(get("topmine_request_stage_seconds_sum{stage=\"parse\"}") > 0.0);

    // Route latency histograms and the cumulative-bucket invariant: counts
    // along increasing `le` must be monotone and end at `_count`.
    assert_eq!(
        get("topmine_http_request_seconds_count{route=\"/infer\"}"),
        3.0
    );
    let infer_total = get("topmine_http_request_seconds_count{route=\"/infer\"}");
    let mut last = 0.0;
    let mut saw_inf = false;
    for line in text.lines() {
        if let Some(rest) =
            line.strip_prefix("topmine_http_request_seconds_bucket{route=\"/infer\",le=\"")
        {
            let (_, value) = parse_sample(rest);
            assert!(value >= last, "buckets must be cumulative:\n{text}");
            last = value;
            saw_inf |= rest.starts_with("+Inf");
        }
    }
    assert!(saw_inf, "missing +Inf bucket:\n{text}");
    assert_eq!(last, infer_total, "+Inf bucket must equal _count");

    // Inference counters and scrape-time gauges.
    assert_eq!(get("topmine_infer_documents_total"), 1.0);
    assert!(get("topmine_phi_gather_columns_total") >= 1.0);
    assert_eq!(get("topmine_cache_hits"), 1.0);
    assert_eq!(get("topmine_cache_misses"), 1.0);
    assert!(get("topmine_uptime_seconds") >= 0.0);

    // A second scrape sees the first one counted.
    let (_, _, text2) = request(addr, "GET /metrics", "");
    let count: f64 = text2
        .lines()
        .find_map(|l| {
            l.strip_prefix("topmine_http_requests_total{route=\"/metrics\",status=\"200\"}")
                .map(|v| v.trim().parse().unwrap())
        })
        .expect("metrics route counter");
    assert_eq!(count, 1.0);

    handle.shutdown();
}
