//! Property test: `FrozenModel::save`/`load` round-trips exactly for
//! arbitrarily shaped models — any topic/vocabulary count, any lexicon,
//! any preprocessing configuration, with and without unstem tables.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topmine_corpus::Vocab;
use topmine_serve::{FrozenModel, ModelHeader, PhraseTrie, PreprocessConfig};

fn tmpdir(tag: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("topmine-frozen-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a structurally valid model from free parameters.
fn build_model(k: usize, v: usize, seed: u64, stem: bool, stopwords: bool) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vocab = Vocab::new();
    for i in 0..v {
        vocab.intern(&format!("w{i}"));
    }
    // Random φ rows, normalized.
    let phi: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            let raw: Vec<f64> = (0..v).map(|_| rng.gen_range(1e-6..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        })
        .collect();
    let alpha: Vec<f64> = (0..k).map(|_| rng.gen_range(0.01..5.0)).collect();
    // Random lexicon: unigrams for every word, a handful of n-grams.
    let total_tokens = rng.gen_range(100u64..10_000);
    let mut lexicon = PhraseTrie::new(total_tokens, rng.gen_range(1u64..6));
    for w in 0..v as u32 {
        lexicon.insert(&[w], rng.gen_range(1u64..50));
    }
    for _ in 0..rng.gen_range(0usize..8) {
        let len = rng.gen_range(2usize..5);
        let phrase: Vec<u32> = (0..len).map(|_| rng.gen_range(0..v as u32)).collect();
        lexicon.insert(&phrase, rng.gen_range(1u64..20));
    }
    let unstem = stem.then(|| {
        (0..v)
            .map(|i| {
                if i % 3 == 0 {
                    String::new() // exercise the sparse-save path
                } else {
                    format!("surface{i}")
                }
            })
            .collect()
    });
    FrozenModel::from_parts(
        ModelHeader {
            n_topics: k,
            vocab_size: v,
            n_docs: rng.gen_range(1usize..1000),
            n_tokens: total_tokens,
            seg_alpha: rng.gen_range(0.1..20.0),
            beta: rng.gen_range(1e-4..0.5),
        },
        PreprocessConfig {
            stem,
            remove_stopwords: stopwords,
            min_token_len: rng.gen_range(1usize..4),
            stopwords: if stopwords {
                vec!["and".into(), "of".into(), "the".into()]
            } else {
                Vec::new()
            },
        },
        vocab,
        unstem,
        lexicon,
        phi,
        alpha,
    )
    .expect("constructed model must validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_is_the_identity(
        k in 1usize..6,
        v in 1usize..40,
        seed in 0u64..1_000_000,
        stem_flag in 0u8..2,
        stopword_flag in 0u8..2,
    ) {
        let model = build_model(k, v, seed, stem_flag == 1, stopword_flag == 1);
        let dir = tmpdir(seed ^ (k as u64) << 32 ^ v as u64);
        model.save(&dir).unwrap();
        let loaded = FrozenModel::load(&dir).unwrap();
        prop_assert_eq!(&loaded.header, &model.header);
        prop_assert_eq!(&loaded.preprocess, &model.preprocess);
        prop_assert_eq!(&loaded.lexicon, &model.lexicon);
        // φ round-trips bit-exactly (17-significant-digit serialization).
        prop_assert_eq!(&loaded.phi, &model.phi);
        prop_assert_eq!(&loaded.alpha, &model.alpha);
        prop_assert_eq!(loaded.vocab.len(), model.vocab.len());
        for (id, w) in model.vocab.iter() {
            prop_assert_eq!(loaded.vocab.word(id), w);
        }
        prop_assert_eq!(&loaded.unstem, &model.unstem);
        // And a second save produces byte-identical files (canonical form).
        let dir2 = tmpdir(seed ^ 0xdead_beef);
        loaded.save(&dir2).unwrap();
        for file in ["header.tsv", "vocab.tsv", "lexicon.tsv", "phi.tsv"] {
            let a = std::fs::read(dir.join(file)).unwrap();
            let b = std::fs::read(dir2.join(file)).unwrap();
            prop_assert_eq!(a, b, "{} not canonical", file);
        }
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(dir2);
    }
}
