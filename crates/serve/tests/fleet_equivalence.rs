//! Zero-divergence acceptance for fleet serving: the router talking to
//! real shard servers over loopback TCP must be **bit-identical** to the
//! in-process monolith for the same (text, seed, iters, top) at every
//! shard count — the wire protocol is an implementation detail, never an
//! observable one. The HTTP end-to-end variants byte-compare `/infer` and
//! `/infer_batch` bodies between a router-backed server and a
//! monolith-backed one.

mod fleet_common;

use fleet_common::{fitted_model, fleet, request, QUERIES};
use proptest::prelude::*;
use std::sync::Arc;
use topmine_serve::{
    infer_doc, HttpServer, InferConfig, ModelBackend, QueryEngine, ServerConfig, FLEET_MODEL_FORMAT,
};

#[test]
fn fleet_inference_is_bit_identical_across_shard_counts() {
    let frozen = fitted_model(9);
    for n_shards in [1usize, 2, 3, 5] {
        let (router, handles, dir) = fleet("equiv", &frozen, n_shards);
        assert_eq!(router.format_tag(), FLEET_MODEL_FORMAT);
        for (i, text) in QUERIES.iter().enumerate() {
            for seed in [1u64, 7, 123456789] {
                let cfg = InferConfig {
                    fold_iters: 15 + i,
                    seed,
                    top_topics: 1 + i % 3,
                };
                assert_eq!(
                    frozen.infer(text, &cfg),
                    infer_doc(&router, text, &cfg, seed),
                    "shards={n_shards} text={text:?} seed={seed}"
                );
            }
        }
        drop(router);
        for handle in handles {
            handle.shutdown();
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (shard count, seed, iters, top, query): the through-the-wire
    /// result equals the monolithic one bit-for-bit.
    #[test]
    fn fleet_equals_monolithic(
        n_shards in 1usize..5,
        seed in 0u64..1_000_000,
        fold_iters in 1usize..40,
        top in 1usize..5,
        query_idx in 0usize..5,
    ) {
        let frozen = fitted_model(13);
        let (router, handles, dir) = fleet("prop", &frozen, n_shards);
        let cfg = InferConfig { fold_iters, seed, top_topics: top };
        let text = QUERIES[query_idx];
        let want = frozen.infer(text, &cfg);
        let got = infer_doc(&router, text, &cfg, seed);
        drop(router);
        for handle in handles {
            handle.shutdown();
        }
        let _ = std::fs::remove_dir_all(dir);
        prop_assert_eq!(want, got);
    }
}

#[test]
fn fleet_http_bodies_are_byte_identical_to_the_monolith() {
    let frozen = fitted_model(19);
    let (router, handles, dir) = fleet("http", &frozen, 3);

    let fleet_engine = Arc::new(QueryEngine::new(Arc::new(router), 2));
    let fleet_server = HttpServer::bind("127.0.0.1:0", fleet_engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mono_engine = Arc::new(QueryEngine::new(Arc::new(frozen), 2));
    let mono_server = HttpServer::bind("127.0.0.1:0", mono_engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // /healthz aggregates per-shard status when the backend is a fleet.
    let (status, health) = request(fleet_server.addr(), "GET /healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"fleet\":["), "{health}");
    assert!(health.contains("\"consecutive_failures\":0"), "{health}");

    // Byte-identical /infer.
    let doc = "support vector machines for the data streams";
    let (status_a, body_a) = request(fleet_server.addr(), "POST /infer?seed=42&iters=25", doc);
    let (status_b, body_b) = request(mono_server.addr(), "POST /infer?seed=42&iters=25", doc);
    assert_eq!((status_a, status_b), (200, 200), "{body_a} {body_b}");
    assert_eq!(
        body_a, body_b,
        "fleet and monolithic /infer bodies diverged"
    );
    assert!(body_a.contains("\"theta\""), "{body_a}");

    // Byte-identical /infer_batch (one shared gather spanning shards;
    // the endpoint takes newline-delimited documents).
    let batch = "mining frequent patterns in streams\n\
                 topic models for text\n\
                 support vector machines";
    let (status_a, body_a) = request(fleet_server.addr(), "POST /infer_batch?seed=7", batch);
    let (status_b, body_b) = request(mono_server.addr(), "POST /infer_batch?seed=7", batch);
    assert_eq!((status_a, status_b), (200, 200), "{body_a} {body_b}");
    assert_eq!(body_a, body_b, "fleet and monolithic batch bodies diverged");
    assert!(body_a.starts_with("{\"batch_size\":3"), "{body_a}");

    // /metrics exposes the per-shard fleet counters.
    let (status, metrics) = request(fleet_server.addr(), "GET /metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("topmine_fleet_rpc_seconds"),
        "missing fleet RPC histogram:\n{metrics}"
    );
    assert!(
        metrics.contains("topmine_fleet_bytes_sent_total{shard=\"0\"}"),
        "missing per-shard byte counter:\n{metrics}"
    );

    fleet_server.shutdown();
    mono_server.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    let _ = std::fs::remove_dir_all(dir);
}
