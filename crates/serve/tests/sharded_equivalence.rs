//! The acceptance bar for the sharded backend: inference through a
//! `ShardedModel` must be **bit-identical** to the monolithic
//! `FrozenModel` for the same (text, seed, iters, top) at every shard
//! count and thread count — scatter-gather is an implementation detail,
//! never an observable one. Plus the sharded bundle's disk story:
//! save/load round-trips exactly, re-saving cleans stale shards, and a
//! sharded bundle serves over HTTP end-to-end.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use topmine_corpus::{corpus_from_texts, CorpusOptions};
use topmine_lda::{GroupedDocs, PhraseLda, TopicModelConfig};
use topmine_phrase::Segmenter;
use topmine_serve::{
    load_bundle, FrozenModel, HttpServer, InferConfig, QueryEngine, ServerConfig, ShardedModel,
};

fn fitted_model(seed: u64) -> FrozenModel {
    let texts: Vec<String> = (0..30)
        .flat_map(|i| {
            [
                format!("mining frequent patterns in data streams {i}"),
                format!("support vector machines for classification task {i}"),
                format!("topic models for text corpora volume {i}"),
            ]
        })
        .collect();
    let corpus = corpus_from_texts(texts.iter().map(String::as_str));
    let (stats, seg) = Segmenter::with_params(5, 2.0).segment(&corpus);
    let grouped = GroupedDocs::from_segmentation(&corpus, &seg);
    let mut lda = PhraseLda::new(grouped, TopicModelConfig::new(3).with_seed(seed));
    lda.run(30);
    FrozenModel::freeze(&corpus, &stats, 2.0, &lda, &CorpusOptions::default())
}

const QUERIES: &[&str] = &[
    "support vector machines in the data streams",
    "a study of mining frequent patterns",
    "topic models, support vector machines",
    "completely unknown querywords here",
    "",
];

#[test]
fn sharded_inference_is_bit_identical_across_shard_counts() {
    let frozen = fitted_model(9);
    for shards in [1usize, 2, 3, 7] {
        let sharded = ShardedModel::from_frozen(&frozen, shards).unwrap();
        for (i, text) in QUERIES.iter().enumerate() {
            for seed in [1u64, 7, 123456789] {
                let cfg = InferConfig {
                    fold_iters: 15 + i,
                    seed,
                    top_topics: 1 + i % 3,
                };
                assert_eq!(
                    frozen.infer(text, &cfg),
                    sharded.infer(text, &cfg),
                    "shards={shards} text={text:?} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn sharded_engines_match_across_thread_counts() {
    let frozen = fitted_model(11);
    let texts: Vec<String> = (0..12)
        .map(|i| format!("support vector machines and frequent patterns, part {i}"))
        .collect();
    let cfg = InferConfig::default();
    let baseline = QueryEngine::new(Arc::new(frozen.clone()), 1).infer_batch(&texts, &cfg);
    for shards in [1usize, 2, 3, 7] {
        let sharded = Arc::new(ShardedModel::from_frozen(&frozen, shards).unwrap());
        for threads in [1usize, 4] {
            let engine = QueryEngine::new(sharded.clone(), threads);
            assert_eq!(
                engine.infer_batch(&texts, &cfg),
                baseline,
                "shards={shards} threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (shard count, seed, iters, top, query mix): the sharded result
    /// equals the monolithic one bit-for-bit.
    #[test]
    fn sharded_equals_monolithic(
        shards in 1usize..9,
        seed in 0u64..1_000_000,
        fold_iters in 1usize..40,
        top in 1usize..5,
        query_idx in 0usize..5,
    ) {
        let frozen = fitted_model(13);
        let sharded = ShardedModel::from_frozen(&frozen, shards).unwrap();
        let cfg = InferConfig { fold_iters, seed, top_topics: top };
        let text = QUERIES[query_idx];
        prop_assert_eq!(frozen.infer(text, &cfg), sharded.infer(text, &cfg));
    }
}

#[test]
fn sharded_bundle_roundtrips_and_resave_cleans_stale_shards() {
    let dir = std::env::temp_dir().join(format!("topmine-sharded-equiv-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let frozen = fitted_model(17);
    let wide = ShardedModel::from_frozen(&frozen, 7).unwrap();
    wide.save(&dir).unwrap();
    let loaded = ShardedModel::load(&dir).unwrap();
    assert_eq!(loaded, wide);
    // The reloaded bundle serves bit-identically too.
    let cfg = InferConfig::default();
    for text in QUERIES {
        assert_eq!(frozen.infer(text, &cfg), loaded.infer(text, &cfg));
    }
    // Re-save with fewer shards: stale shard directories must disappear
    // and the auto-detecting loader must see exactly the new bundle.
    let narrow = ShardedModel::from_frozen(&frozen, 2).unwrap();
    narrow.save(&dir).unwrap();
    for stale in 2..7 {
        assert!(!dir.join(format!("shard-{stale}")).exists());
    }
    let backend = load_bundle(&dir).unwrap();
    assert_eq!(backend.n_shards(), 2);
    assert_eq!(backend.n_lexicon_phrases(), frozen.lexicon.n_phrases());
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP/1.1 request; returns (status, body).
fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let message = format!(
        "{head} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn sharded_bundle_serves_over_http_end_to_end() {
    let dir =
        std::env::temp_dir().join(format!("topmine-sharded-equiv-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let frozen = fitted_model(19);
    ShardedModel::from_frozen(&frozen, 3)
        .unwrap()
        .save(&dir)
        .unwrap();
    let backend = load_bundle(&dir).unwrap();
    assert_eq!(backend.n_shards(), 3);

    let sharded_engine = Arc::new(QueryEngine::new(backend, 2));
    let sharded_server = HttpServer::bind("127.0.0.1:0", sharded_engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let frozen_engine = Arc::new(QueryEngine::new(Arc::new(frozen), 2));
    let frozen_server = HttpServer::bind("127.0.0.1:0", frozen_engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    let (status, health) = request(sharded_server.addr(), "GET /healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"shards\":3"), "{health}");
    assert!(health.contains("topmine-sharded-model/1"), "{health}");
    assert!(health.contains("\"cache\""), "{health}");

    // Identical queries against both servers produce byte-identical
    // inference bodies.
    let doc = "support vector machines for the data streams";
    let (status_a, body_a) = request(sharded_server.addr(), "POST /infer?seed=42&iters=25", doc);
    let (status_b, body_b) = request(frozen_server.addr(), "POST /infer?seed=42&iters=25", doc);
    assert_eq!((status_a, status_b), (200, 200), "{body_a} {body_b}");
    assert_eq!(body_a, body_b, "sharded and monolithic bodies diverged");
    assert!(body_a.contains("\"theta\""), "{body_a}");

    sharded_server.shutdown();
    frozen_server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
