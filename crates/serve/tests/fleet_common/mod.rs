//! Shared scaffolding for the fleet-serving integration tests: fit a tiny
//! model, save it as a sharded bundle, spawn in-process shard servers on
//! ephemeral loopback ports, and connect a router to them.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use topmine_corpus::{corpus_from_texts, CorpusOptions};
use topmine_lda::{GroupedDocs, PhraseLda, TopicModelConfig};
use topmine_phrase::Segmenter;
use topmine_serve::{
    FrozenModel, PoolConfig, RemoteShardedModel, ShardServer, ShardServerHandle, ShardSlice,
    ShardedModel,
};

/// The same tiny three-topic corpus the sharded-equivalence suite fits.
pub fn fitted_model(seed: u64) -> FrozenModel {
    let texts: Vec<String> = (0..30)
        .flat_map(|i| {
            [
                format!("mining frequent patterns in data streams {i}"),
                format!("support vector machines for classification task {i}"),
                format!("topic models for text corpora volume {i}"),
            ]
        })
        .collect();
    let corpus = corpus_from_texts(texts.iter().map(String::as_str));
    let (stats, seg) = Segmenter::with_params(5, 2.0).segment(&corpus);
    let grouped = GroupedDocs::from_segmentation(&corpus, &seg);
    let mut lda = PhraseLda::new(grouped, TopicModelConfig::new(3).with_seed(seed));
    lda.run(30);
    FrozenModel::freeze(&corpus, &stats, 2.0, &lda, &CorpusOptions::default())
}

pub const QUERIES: &[&str] = &[
    "support vector machines in the data streams",
    "a study of mining frequent patterns",
    "topic models, support vector machines",
    "completely unknown querywords here",
    "",
];

/// Save `frozen` as an `n_shards`-way bundle under a unique temp dir.
pub fn save_sharded(tag: &str, frozen: &FrozenModel, n_shards: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "topmine-fleet-{tag}-{}-{n_shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ShardedModel::from_frozen(frozen, n_shards)
        .expect("shard model")
        .save(&dir)
        .expect("save sharded bundle");
    dir
}

/// Spawn one in-process shard server per `shard-K/` directory of `dir`,
/// each on an ephemeral loopback port. Returns the handles (kill order is
/// the caller's business) and their addresses in shard order.
pub fn spawn_fleet(dir: &Path, n_shards: usize) -> (Vec<ShardServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for k in 0..n_shards {
        let slice = ShardSlice::load(dir, k).expect("load shard slice");
        let handle = ShardServer::bind("127.0.0.1:0", slice)
            .expect("bind shard")
            .spawn()
            .expect("spawn shard");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

/// A [`PoolConfig`] with short timeouts so failure tests stay fast.
pub fn fast_pool() -> PoolConfig {
    PoolConfig {
        connect_timeout: std::time::Duration::from_millis(500),
        rpc_timeout: std::time::Duration::from_secs(2),
        retries: 1,
        backoff: std::time::Duration::from_millis(10),
        cooldown: std::time::Duration::from_millis(200),
    }
}

/// Save + spawn + connect in one call for the common happy path.
pub fn fleet(
    tag: &str,
    frozen: &FrozenModel,
    n_shards: usize,
) -> (RemoteShardedModel, Vec<ShardServerHandle>, PathBuf) {
    let dir = save_sharded(tag, frozen, n_shards);
    let (handles, addrs) = spawn_fleet(&dir, n_shards);
    let router = RemoteShardedModel::connect(&dir, &addrs, PoolConfig::default())
        .expect("connect router to fleet");
    (router, handles, dir)
}

/// One raw HTTP/1.1 request; returns (status, body).
pub fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let message = format!(
        "{head} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}
