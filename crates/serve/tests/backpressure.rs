//! Admission-control end-to-end: saturate the bounded queue behind a
//! dispatcher that is deliberately stuck inside inference, and check the
//! whole contract at once — overflow answers `429` + `Retry-After`, the
//! cheap read routes stay responsive while saturated, the queue-depth
//! gauge and rejection counters tell the truth, and draining the gate
//! recovers to normal service.
//!
//! This lives in its own integration-test binary (one `#[test]`) because
//! it asserts exact values of the process-global serving metrics, like
//! `metrics_smoke` does.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use topmine_corpus::{corpus_from_texts, CorpusOptions, Document};
use topmine_lda::{GroupedDocs, PhraseLda, TopicModelConfig};
use topmine_phrase::Segmenter;
use topmine_serve::{
    FrozenModel, HttpServer, ModelBackend, ModelHeader, PreparedDoc, PreprocessConfig, QueryEngine,
    ServerConfig,
};

fn fitted_model() -> FrozenModel {
    let texts: Vec<String> = (0..30)
        .flat_map(|i| {
            [
                format!("mining frequent patterns in data streams {i}"),
                format!("support vector machines for classification {i}"),
            ]
        })
        .collect();
    let corpus = corpus_from_texts(texts.iter().map(String::as_str));
    let (stats, seg) = Segmenter::with_params(5, 2.0).segment(&corpus);
    let grouped = GroupedDocs::from_segmentation(&corpus, &seg);
    let mut lda = PhraseLda::new(grouped, TopicModelConfig::new(2).with_seed(3));
    lda.run(30);
    FrozenModel::freeze(&corpus, &stats, 2.0, &lda, &CorpusOptions::default())
}

/// One raw HTTP/1.1 request; returns (status, head, body).
fn request(addr: std::net::SocketAddr, head: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let message = format!(
        "{head} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (headers, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, headers, payload)
}

/// A backend whose φ gathers block until the gate opens; an arrivals
/// counter lets the test wait until the dispatcher is provably stuck.
struct GatedBackend {
    inner: Arc<FrozenModel>,
    state: Mutex<(usize, bool)>, // (arrivals, open)
    cv: Condvar,
}

impl GatedBackend {
    fn new(inner: Arc<FrozenModel>) -> Self {
        Self {
            inner,
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    fn arrive_and_wait(&self) {
        let mut state = self.state.lock().unwrap();
        state.0 += 1;
        self.cv.notify_all();
        while !state.1 {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn wait_arrivals(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.0 < n {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        self.cv.notify_all();
    }
}

impl ModelBackend for GatedBackend {
    fn header(&self) -> &ModelHeader {
        self.inner.header()
    }
    fn preprocess(&self) -> &PreprocessConfig {
        ModelBackend::preprocess(self.inner.as_ref())
    }
    fn alpha(&self) -> &[f64] {
        ModelBackend::alpha(self.inner.as_ref())
    }
    fn format_tag(&self) -> &'static str {
        self.inner.format_tag()
    }
    fn n_lexicon_phrases(&self) -> usize {
        self.inner.n_lexicon_phrases()
    }
    fn prepare(&self, text: &str) -> PreparedDoc {
        self.inner.prepare(text)
    }
    fn segment(&self, doc: &Document) -> Vec<(u32, u32)> {
        ModelBackend::segment(self.inner.as_ref(), doc)
    }
    fn gather_phi(&self, words: &[u32]) -> Vec<f64> {
        self.arrive_and_wait();
        self.inner.gather_phi(words)
    }
    fn gather_phi_batch(&self, words: &[u32]) -> Vec<f64> {
        self.arrive_and_wait();
        self.inner.gather_phi_batch(words)
    }
    fn display_word(&self, id: u32) -> &str {
        self.inner.display_word(id)
    }
}

#[test]
fn saturated_queue_rejects_then_recovers() {
    let backend = Arc::new(GatedBackend::new(Arc::new(fitted_model())));
    // No response cache: every request must reach the gated gather.
    let engine = Arc::new(QueryEngine::with_cache_capacity(
        Arc::clone(&backend) as Arc<dyn ModelBackend>,
        1,
        0,
    ));
    const QUEUE_DEPTH: usize = 2;
    let server = HttpServer::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            n_threads: 1,
            queue_depth: QUEUE_DEPTH,
            max_batch: 1,
            deadline: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    // Occupy the one dispatcher: this request is popped from the queue and
    // blocks inside the gated gather.
    let blocker =
        std::thread::spawn(move || request(addr, "POST /infer", "support vector machines"));
    backend.wait_arrivals(1);

    // Now fire queue_depth + 1 concurrent requests. The queue holds
    // exactly QUEUE_DEPTH of them; exactly one must be turned away with
    // 429 — whichever loses the race, the accounting is the same.
    let contenders: Vec<_> = (0..QUEUE_DEPTH + 1)
        .map(|i| {
            std::thread::spawn(move || {
                request(
                    addr,
                    "POST /infer",
                    &format!("mining frequent patterns number {i}"),
                )
            })
        })
        .collect();

    // The rejection is immediate (it never enters the queue); wait for it
    // by polling the rejection counter rather than racing the threads.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (status, _, metrics) = request(addr, "GET /metrics", "");
        assert_eq!(status, 200, "metrics must respond under saturation");
        if metrics.contains("topmine_requests_rejected_total 1") {
            // Saturation snapshot: full queue, one rejection, live gauges.
            assert!(
                metrics.contains("topmine_admission_queue_depth 2"),
                "queue gauge should read {QUEUE_DEPTH} while saturated:\n{metrics}"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no rejection observed:\n{metrics}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The cheap read routes stay responsive while the queue is saturated.
    let (status, _, health) = request(addr, "GET /healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // Open the gate: everything queued drains to 200.
    backend.open();
    let (status, _, body) = blocker.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let mut statuses: Vec<u16> = contenders
        .into_iter()
        .map(|t| {
            let (status, headers, body) = t.join().unwrap();
            if status == 429 {
                assert!(
                    headers.contains("Retry-After: 1"),
                    "429 must carry Retry-After:\n{headers}"
                );
                assert!(body.contains("admission queue full"), "{body}");
            }
            status
        })
        .collect();
    statuses.sort_unstable();
    assert_eq!(statuses, vec![200, 200, 429], "exactly one rejection");

    // Recovery: with the gate open, fresh requests flow normally again.
    let (status, _, body) = request(addr, "POST /infer", "support vector machines again");
    assert_eq!(status, 200, "{body}");
    let (_, _, metrics) = request(addr, "GET /metrics", "");
    assert!(
        metrics.contains("topmine_admission_queue_depth 0"),
        "queue drains back to empty:\n{metrics}"
    );
    assert!(
        metrics.contains("topmine_requests_rejected_total 1"),
        "{metrics}"
    );
    // The batching telemetry observed the dispatches.
    assert!(metrics.contains("topmine_dispatch_batch_docs"), "{metrics}");
    assert!(
        metrics.contains("topmine_batch_phi_columns_gathered_total"),
        "{metrics}"
    );

    server.shutdown();
}
