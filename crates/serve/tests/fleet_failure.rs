//! Shard failure and recovery through the whole serving stack: kill one
//! shard process → bounded retries → `503` with a JSON error body (and a
//! degraded `/healthz`); restart the shard on the same port → the router
//! reconnects and bit-identity with the monolith holds again.

mod fleet_common;

use fleet_common::{fast_pool, fitted_model, request, save_sharded, spawn_fleet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use topmine_serve::{
    HttpServer, QueryEngine, RemoteShardedModel, ServerConfig, ShardServer, ShardSlice,
};

#[test]
fn killed_shard_yields_503_then_recovery_restores_bit_identity() {
    let frozen = fitted_model(23);
    let dir = save_sharded("failure", &frozen, 2);
    let (mut handles, addrs) = spawn_fleet(&dir, 2);
    let router =
        RemoteShardedModel::connect(&dir, &addrs, fast_pool()).expect("connect router to fleet");

    // Cache capacity 0: a cached response would mask the dead shard (and
    // fake an instant recovery), so every request must really gather.
    let engine = Arc::new(QueryEngine::with_cache_capacity(Arc::new(router), 1, 0));
    let server = HttpServer::bind("127.0.0.1:0", engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // A document touching the whole vocabulary (every content stem plus
    // every per-document number token), so its φ gather must hit BOTH
    // shards — killing either one has to fail the request.
    let doc = (0..30).fold(
        "mining frequent patterns in data streams support vector machines \
         for classification task topic models for text corpora volume"
            .to_string(),
        |acc, i| format!("{acc} {i}"),
    );
    let doc = doc.as_str();
    let head = "POST /infer?seed=42&iters=25";
    let (status, baseline) = request(server.addr(), head, doc);
    assert_eq!(status, 200, "{baseline}");

    // Healthy fleet: /healthz aggregates both shards as ok.
    let (status, health) = request(server.addr(), "GET /healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // Kill shard 1 (listener closed, live connections severed). Distinct
    // query strings dodge the response cache — a cache hit would never
    // touch the dead shard.
    let dead_addr = addrs[1].clone();
    handles.pop().unwrap().shutdown();

    let started = Instant::now();
    let (status, body) = request(server.addr(), "POST /infer?seed=43&iters=25", doc);
    let elapsed = started.elapsed();
    assert_eq!(status, 503, "want fail-fast 503, got {status}: {body}");
    assert!(
        body.starts_with("{\"error\":"),
        "503 body must be the JSON error shape: {body}"
    );
    assert!(body.contains("shard 1"), "blames the dead shard: {body}");
    assert!(
        elapsed < Duration::from_secs(10),
        "bounded retries took {elapsed:?}"
    );

    // Degraded is visible in /healthz (per-shard detail included).
    let (status, health) = request(server.addr(), "GET /healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"ok\":false"), "{health}");
    assert!(health.contains(&dead_addr), "{health}");

    // While the circuit is open, failures are immediate (no full retry
    // ladder) — the request just fails fast with the same 503 contract.
    let started = Instant::now();
    let (status, _) = request(server.addr(), "POST /infer?seed=44&iters=25", doc);
    assert_eq!(status, 503);
    assert!(started.elapsed() < Duration::from_secs(5));

    // Restart the shard on the same port.
    let slice = ShardSlice::load(&dir, 1).expect("reload shard slice");
    let restarted = ShardServer::bind(dead_addr.as_str(), slice)
        .expect("rebind the shard's port")
        .spawn()
        .expect("respawn");

    // The router reconnects once the cooldown lapses; poll until the
    // answer comes back — and when it does, it is byte-identical to the
    // pre-failure baseline.
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        let (status, body) = request(server.addr(), head, doc);
        if status == 200 {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "router never recovered; last: {status} {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        recovered, baseline,
        "post-recovery inference diverged from the pre-failure baseline"
    );

    // Health converges back to ok.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, health) = request(server.addr(), "GET /healthz", "");
        if health.contains("\"status\":\"ok\"") {
            break;
        }
        assert!(Instant::now() < deadline, "health stuck degraded: {health}");
        std::thread::sleep(Duration::from_millis(50));
    }

    server.shutdown();
    restarted.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    let _ = std::fs::remove_dir_all(dir);
}
