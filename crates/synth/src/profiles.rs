//! Dataset profiles matching the shapes of the paper's six corpora (§7.1).
//!
//! The absolute sizes are scaled down to laptop-friendly defaults (the paper
//! used 1.9M DBLP titles and a 39M-token abstract corpus); the `scale`
//! parameter multiplies document counts for the scalability experiments
//! (Figure 8 sweeps it). What each profile preserves is the *shape* that
//! drives the evaluation: title corpora are short and phrase-dense, abstract
//! and news corpora are long with boilerplate background, Yelp is noisy with
//! sentiment background dominating (which is why the paper finds its topical
//! phrases lower-quality).

use crate::gen::{CorpusGenerator, GeneratorConfig, SynthCorpus};
use crate::lexicon::{
    acl_background, acl_topics, cs_background, cs_topics, news_background, news_topics,
    yelp_background, yelp_topics,
};

/// The six dataset profiles of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// 1.9M short CS paper titles in the paper.
    DblpTitles,
    /// 44K titles from 20 AI/DB/DM/IR/ML/NLP conferences.
    Conf20,
    /// 529K CS abstracts, 39M tokens — the paper's largest long-text corpus.
    DblpAbstracts,
    /// 106K full AP news articles (1989).
    ApNews,
    /// 2K ACL abstracts — the paper's smallest corpus.
    AclAbstracts,
    /// 230K noisy Yelp reviews.
    YelpReviews,
}

impl Profile {
    pub const ALL: [Profile; 6] = [
        Profile::DblpTitles,
        Profile::Conf20,
        Profile::DblpAbstracts,
        Profile::ApNews,
        Profile::AclAbstracts,
        Profile::YelpReviews,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Profile::DblpTitles => "dblp-titles",
            Profile::Conf20 => "20conf",
            Profile::DblpAbstracts => "dblp-abstracts",
            Profile::ApNews => "ap-news",
            Profile::AclAbstracts => "acl-abstracts",
            Profile::YelpReviews => "yelp-reviews",
        }
    }
}

/// Build the generator configuration for `profile`, with document count
/// scaled by `scale` (1.0 = default reproduction size).
pub fn profile_config(profile: Profile, scale: f64) -> GeneratorConfig {
    assert!(scale > 0.0, "scale must be positive");
    let docs = |base: usize| ((base as f64 * scale).round() as usize).max(8);
    match profile {
        Profile::DblpTitles => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(20_000),
            units_per_doc: (4, 9),
            phrase_prob: 0.45,
            background_prob: 0.12,
            tail_prob: 0.35,
            tail_vocab: 600,
            punct_prob: 0.08,
            doc_topic_alpha: 0.08,
            zipf_exponent: 0.75,
            rare_words_per_topic: 200,
            rare_phrases_per_topic: 80,
            topics: cs_topics(),
            background: cs_background(),
        },
        Profile::Conf20 => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(6_000),
            units_per_doc: (4, 9),
            phrase_prob: 0.45,
            background_prob: 0.10,
            tail_prob: 0.30,
            tail_vocab: 400,
            punct_prob: 0.08,
            doc_topic_alpha: 0.06,
            zipf_exponent: 0.75,
            rare_words_per_topic: 150,
            rare_phrases_per_topic: 60,
            topics: cs_topics(),
            background: cs_background(),
        },
        Profile::DblpAbstracts => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(2_500),
            units_per_doc: (60, 140),
            phrase_prob: 0.30,
            background_prob: 0.25,
            tail_prob: 0.35,
            tail_vocab: 1_500,
            punct_prob: 0.12,
            doc_topic_alpha: 0.15,
            zipf_exponent: 0.8,
            rare_words_per_topic: 400,
            rare_phrases_per_topic: 150,
            topics: cs_topics(),
            background: cs_background(),
        },
        Profile::ApNews => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(1_800),
            units_per_doc: (90, 220),
            phrase_prob: 0.25,
            background_prob: 0.30,
            tail_prob: 0.40,
            tail_vocab: 2_000,
            punct_prob: 0.12,
            doc_topic_alpha: 0.10,
            zipf_exponent: 0.8,
            rare_words_per_topic: 400,
            rare_phrases_per_topic: 150,
            topics: news_topics(),
            background: news_background(),
        },
        Profile::AclAbstracts => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(1_500),
            units_per_doc: (40, 100),
            phrase_prob: 0.32,
            background_prob: 0.22,
            tail_prob: 0.30,
            tail_vocab: 700,
            punct_prob: 0.12,
            doc_topic_alpha: 0.12,
            zipf_exponent: 0.8,
            rare_words_per_topic: 250,
            rare_phrases_per_topic: 100,
            topics: acl_topics(),
            background: acl_background(),
        },
        Profile::YelpReviews => GeneratorConfig {
            name: profile.name().into(),
            n_docs: docs(4_000),
            units_per_doc: (20, 80),
            phrase_prob: 0.25,
            // Yelp's defining property in the paper: "a plethora of
            // background words and phrases such as 'good', 'love', and
            // 'great'" that depress phrase quality.
            background_prob: 0.45,
            tail_prob: 0.35,
            tail_vocab: 1_200,
            punct_prob: 0.15,
            doc_topic_alpha: 0.25,
            zipf_exponent: 0.75,
            rare_words_per_topic: 500,
            rare_phrases_per_topic: 200,
            topics: yelp_topics(),
            background: yelp_background(),
        },
    }
}

/// Build the generator for a profile.
pub fn generator(profile: Profile, scale: f64) -> CorpusGenerator {
    CorpusGenerator::new(profile_config(profile, scale))
}

/// One-call corpus generation.
pub fn generate(profile: Profile, scale: f64, seed: u64) -> SynthCorpus {
    generator(profile, scale).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_valid_corpora() {
        for p in Profile::ALL {
            let s = generate(p, 0.02, 42);
            s.corpus.validate().unwrap();
            assert!(s.corpus.n_docs() >= 8, "{}: too few docs", p.name());
            assert!(s.corpus.n_tokens() > 0);
            assert!(s.n_topics >= 5);
            assert_eq!(s.profile, p.name());
        }
    }

    #[test]
    fn titles_are_short_and_abstracts_long() {
        let titles = generate(Profile::DblpTitles, 0.02, 1);
        let abstracts = generate(Profile::DblpAbstracts, 0.05, 1);
        let avg =
            |s: &crate::gen::SynthCorpus| s.corpus.n_tokens() as f64 / s.corpus.n_docs() as f64;
        assert!(avg(&titles) < 15.0, "titles avg {}", avg(&titles));
        assert!(avg(&abstracts) > 60.0, "abstracts avg {}", avg(&abstracts));
    }

    #[test]
    fn yelp_has_heaviest_background() {
        let yelp = generate(Profile::YelpReviews, 0.02, 3);
        let conf = generate(Profile::Conf20, 0.02, 3);
        let bg_frac = |s: &crate::gen::SynthCorpus| {
            let total: usize = s.truth.token_is_background.iter().map(|v| v.len()).sum();
            let bg: usize = s
                .truth
                .token_is_background
                .iter()
                .map(|v| v.iter().filter(|&&b| b).count())
                .sum();
            bg as f64 / total as f64
        };
        assert!(bg_frac(&yelp) > bg_frac(&conf) + 0.15);
    }

    #[test]
    fn scale_controls_document_count() {
        let small = profile_config(Profile::Conf20, 0.01);
        let large = profile_config(Profile::Conf20, 0.1);
        assert_eq!(small.n_docs, 60);
        assert_eq!(large.n_docs, 600);
    }
}
