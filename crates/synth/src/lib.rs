//! Synthetic corpora with planted topical phrases.
//!
//! The paper evaluates on six proprietary/large corpora (DBLP titles and
//! abstracts, 20Conf, TREC AP news, ACL abstracts, Yelp reviews) that are
//! not redistributable. This crate is the substitution documented in
//! DESIGN.md §3: a generative simulator ([`gen::CorpusGenerator`]) that
//! produces corpora from an LDA-like process with **planted multi-word
//! collocations**, plus per-dataset [`profiles`] matching each corpus'
//! shape (document length, phrase density, background noise, vocabulary
//! tail). Topic lexicons ([`lexicon`]) are seeded from the paper's own
//! result tables so expected outputs are directly comparable.
//!
//! The planted ground truth (topic per token, phrase spans, phrase lexicon)
//! also provides an *objective* oracle for the phrase-quality and coherence
//! evaluations that the paper sourced from human raters.

pub mod gen;
pub mod lexicon;
pub mod profiles;
pub mod random;

pub use gen::{CorpusGenerator, GeneratorConfig, GroundTruth, SynthCorpus};
pub use lexicon::{BackgroundSpec, TopicSpec};
pub use profiles::{generate, generator, profile_config, Profile};
