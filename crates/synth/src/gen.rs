//! The corpus simulator.
//!
//! Documents are produced by an LDA-like generative process **with planted
//! collocations**: each draw first picks a topic from the document's
//! Dirichlet-distributed topic mixture, then emits either a topical phrase
//! (all of whose tokens appear contiguously and share the topic), a topical
//! unigram, or background material (weakly topical words, boilerplate
//! phrases, and a Zipf long tail). Punctuation-style chunk breaks are
//! inserted between draws.
//!
//! Because phrases are emitted atomically, their corpus frequency is far
//! above what the independence null model of Eq. 1 predicts — exactly the
//! statistical signal the paper's phrase mining is designed to detect — and
//! the planted spans/lexicon double as ground truth for the phrase-quality
//! evaluation the paper had to source from human experts.

use crate::lexicon::{BackgroundSpec, TopicSpec};
use crate::random::{dirichlet, sample_index, WeightedPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topmine_corpus::{Corpus, Document, Vocab};
use topmine_util::FxHashSet;

/// Full configuration of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Profile name (for reports).
    pub name: String,
    /// Number of documents.
    pub n_docs: usize,
    /// Units per document, drawn uniformly from this inclusive range. A
    /// *unit* is one generative draw: a phrase (2+ tokens) or one unigram.
    pub units_per_doc: (usize, usize),
    /// Probability a topical draw emits a phrase rather than a unigram.
    pub phrase_prob: f64,
    /// Probability a draw emits background material instead of topical.
    pub background_prob: f64,
    /// Probability a background unigram comes from the Zipf long tail.
    pub tail_prob: f64,
    /// Number of long-tail filler words (`tail000`, ...). Inflates the
    /// vocabulary the way real corpora's hapax tail does.
    pub tail_vocab: usize,
    /// Probability of a chunk break (punctuation) after each unit.
    pub punct_prob: f64,
    /// Symmetric Dirichlet hyperparameter for document-topic mixtures.
    pub doc_topic_alpha: f64,
    /// Zipf exponent for within-pool rank weights.
    pub zipf_exponent: f64,
    /// Rare *topical* words appended to each topic's unigram pool (named
    /// `t{k}rare{j}`), continuing the Zipf tail. Real topical vocabularies
    /// are long-tailed; this sparsity is what makes tying phrase tokens to
    /// one topic (PhraseLDA) pay off in held-out perplexity.
    pub rare_words_per_topic: usize,
    /// Rare topical *phrases* per topic, built from pairs of the rare
    /// words and planted in the lexicon like any other collocation.
    pub rare_phrases_per_topic: usize,
    /// The topical lexicons.
    pub topics: Vec<TopicSpec>,
    /// The shared background pool.
    pub background: BackgroundSpec,
}

/// Ground truth retained from generation.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Planted topic of every mining token, parallel to `corpus.docs`.
    pub token_topics: Vec<Vec<u16>>,
    /// Which tokens are background noise (not topical), parallel arrays.
    pub token_is_background: Vec<Vec<bool>>,
    /// Planted phrase spans per document (document-relative, disjoint).
    pub phrase_spans: Vec<Vec<(u32, u32)>>,
    /// All planted multi-word phrases as id sequences (topical and
    /// background boilerplate).
    pub phrase_lexicon: FxHashSet<Box<[u32]>>,
    /// Topic names, indexed by planted topic id.
    pub topic_names: Vec<String>,
}

impl GroundTruth {
    /// Is this exact id sequence a planted phrase?
    pub fn is_planted(&self, phrase: &[u32]) -> bool {
        self.phrase_lexicon.contains(phrase)
    }

    pub fn n_topics(&self) -> usize {
        self.topic_names.len()
    }
}

/// A generated corpus bundled with its ground truth.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    pub corpus: Corpus,
    pub truth: GroundTruth,
    pub profile: String,
    pub n_topics: usize,
}

/// Pre-interned, pre-weighted pools for one topic.
struct TopicPools {
    unigrams: WeightedPool<u32>,
    phrases: WeightedPool<Box<[u32]>>,
}

/// The generator. Construction interns every lexicon entry; [`Self::generate`]
/// is then deterministic given a seed.
pub struct CorpusGenerator {
    config: GeneratorConfig,
    vocab: Vocab,
    topic_pools: Vec<TopicPools>,
    bg_unigrams: WeightedPool<u32>,
    bg_phrases: WeightedPool<Box<[u32]>>,
    tail_words: WeightedPool<u32>,
    lexicon: FxHashSet<Box<[u32]>>,
}

impl CorpusGenerator {
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(!config.topics.is_empty(), "need at least one topic");
        assert!(config.n_docs > 0, "need at least one document");
        assert!(
            config.units_per_doc.0 >= 1 && config.units_per_doc.0 <= config.units_per_doc.1,
            "bad unit range"
        );
        let mut vocab = Vocab::new();
        let s = config.zipf_exponent;
        let mut lexicon: FxHashSet<Box<[u32]>> = FxHashSet::default();

        let intern_phrase = |vocab: &mut Vocab, p: &str| -> Box<[u32]> {
            p.split_whitespace()
                .map(|w| vocab.intern(w))
                .collect::<Vec<u32>>()
                .into_boxed_slice()
        };

        let topic_pools = config
            .topics
            .iter()
            .enumerate()
            .map(|(k, t)| {
                // Rare topical words continue the Zipf tail after the
                // hand-written pool.
                let rare_words: Vec<u32> = (0..config.rare_words_per_topic)
                    .map(|j| vocab.intern(&format!("t{k}rare{j:03}")))
                    .collect();
                let unigram_pairs: Vec<(u32, f64)> = t
                    .unigrams
                    .iter()
                    .map(|w| vocab.intern(w))
                    .chain(rare_words.iter().copied())
                    .enumerate()
                    .map(|(r, id)| (id, 1.0 / ((r + 1) as f64).powf(s)))
                    .collect();
                let mut phrase_entries: Vec<Box<[u32]>> = t
                    .phrases
                    .iter()
                    .map(|p| {
                        let ids = intern_phrase(&mut vocab, p);
                        lexicon.insert(ids.clone());
                        ids
                    })
                    .collect();
                if !rare_words.is_empty() {
                    for j in 0..config.rare_phrases_per_topic {
                        let n = rare_words.len();
                        let a = rare_words[(2 * j) % n];
                        let b = rare_words[(2 * j + 1) % n];
                        let ids: Box<[u32]> = vec![a, b].into_boxed_slice();
                        lexicon.insert(ids.clone());
                        phrase_entries.push(ids);
                    }
                }
                let phrase_pairs: Vec<(Box<[u32]>, f64)> = phrase_entries
                    .into_iter()
                    .enumerate()
                    .map(|(r, ids)| (ids, 1.0 / ((r + 1) as f64).powf(s)))
                    .collect();
                TopicPools {
                    unigrams: WeightedPool::new(unigram_pairs),
                    phrases: WeightedPool::new(phrase_pairs),
                }
            })
            .collect();

        let bg_unigrams = WeightedPool::zipf(
            config
                .background
                .unigrams
                .iter()
                .map(|w| vocab.intern(w))
                .collect(),
            s,
        );
        let bg_phrases = WeightedPool::zipf(
            config
                .background
                .phrases
                .iter()
                .map(|p| {
                    let ids = intern_phrase(&mut vocab, p);
                    lexicon.insert(ids.clone());
                    ids
                })
                .collect(),
            s,
        );
        let tail_words = WeightedPool::zipf(
            (0..config.tail_vocab)
                .map(|i| vocab.intern(&format!("tail{i:04}")))
                .collect::<Vec<u32>>(),
            1.05,
        );

        Self {
            config,
            vocab,
            topic_pools,
            bg_unigrams,
            bg_phrases,
            tail_words,
            lexicon,
        }
    }

    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    pub fn n_topics(&self) -> usize {
        self.config.topics.len()
    }

    /// Generate the corpus (and ground truth) deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> SynthCorpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.topic_pools.len();
        let cfg = &self.config;

        let mut docs = Vec::with_capacity(cfg.n_docs);
        let mut truth = GroundTruth {
            token_topics: Vec::with_capacity(cfg.n_docs),
            token_is_background: Vec::with_capacity(cfg.n_docs),
            phrase_spans: Vec::with_capacity(cfg.n_docs),
            phrase_lexicon: self.lexicon.clone(),
            topic_names: cfg.topics.iter().map(|t| t.name.to_string()).collect(),
        };

        for _ in 0..cfg.n_docs {
            let theta = dirichlet(&mut rng, cfg.doc_topic_alpha, k);
            let n_units = rng.gen_range(cfg.units_per_doc.0..=cfg.units_per_doc.1);

            let mut tokens: Vec<u32> = Vec::with_capacity(n_units * 2);
            let mut chunk_ends: Vec<u32> = Vec::new();
            let mut topics: Vec<u16> = Vec::with_capacity(n_units * 2);
            let mut is_bg: Vec<bool> = Vec::with_capacity(n_units * 2);
            let mut spans: Vec<(u32, u32)> = Vec::new();

            for _ in 0..n_units {
                let z = sample_index(&mut rng, &theta) as u16;
                let start = tokens.len() as u32;
                if rng.gen_bool(cfg.background_prob) {
                    // Background material.
                    if !self.bg_phrases.is_empty() && rng.gen_bool(cfg.phrase_prob * 0.5) {
                        let phrase = self.bg_phrases.sample(&mut rng);
                        tokens.extend_from_slice(phrase);
                        spans.push((start, tokens.len() as u32));
                        for _ in 0..phrase.len() {
                            topics.push(z);
                            is_bg.push(true);
                        }
                    } else if !self.tail_words.is_empty() && rng.gen_bool(cfg.tail_prob) {
                        tokens.push(*self.tail_words.sample(&mut rng));
                        topics.push(z);
                        is_bg.push(true);
                    } else {
                        tokens.push(*self.bg_unigrams.sample(&mut rng));
                        topics.push(z);
                        is_bg.push(true);
                    }
                } else {
                    let pools = &self.topic_pools[z as usize];
                    if rng.gen_bool(cfg.phrase_prob) {
                        let phrase = pools.phrases.sample(&mut rng);
                        tokens.extend_from_slice(phrase);
                        spans.push((start, tokens.len() as u32));
                        for _ in 0..phrase.len() {
                            topics.push(z);
                            is_bg.push(false);
                        }
                    } else {
                        tokens.push(*pools.unigrams.sample(&mut rng));
                        topics.push(z);
                        is_bg.push(false);
                    }
                }
                // Chunk break between units (never inside a phrase).
                if rng.gen_bool(cfg.punct_prob)
                    && !tokens.is_empty()
                    && chunk_ends.last().copied() != Some(tokens.len() as u32)
                {
                    chunk_ends.push(tokens.len() as u32);
                }
            }
            if chunk_ends.last().copied() != Some(tokens.len() as u32) && !tokens.is_empty() {
                chunk_ends.push(tokens.len() as u32);
            }

            docs.push(Document { tokens, chunk_ends });
            truth.token_topics.push(topics);
            truth.token_is_background.push(is_bg);
            truth.phrase_spans.push(spans);
        }

        let corpus = Corpus {
            vocab: self.vocab.clone(),
            docs,
            provenance: None,
            unstem: None,
        };
        debug_assert!(corpus.validate().is_ok());
        SynthCorpus {
            corpus,
            truth,
            profile: cfg.name.clone(),
            n_topics: k,
        }
    }

    /// Generate *surface text* documents: the same process rendered as raw
    /// strings with stop words and punctuation interleaved, for exercising
    /// the full tokenizer/stemmer/builder pipeline in examples and tests.
    pub fn generate_texts(&self, seed: u64) -> Vec<String> {
        const CONNECTIVES: &[&str] = &["the", "of", "a", "for", "with", "in", "on", "and"];
        let synth = self.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_7e47);
        let mut out = Vec::with_capacity(synth.corpus.n_docs());
        for (d, doc) in synth.corpus.docs.iter().enumerate() {
            let spans = &synth.truth.phrase_spans[d];
            let mut span_iter = spans.iter().peekable();
            let mut text = String::new();
            for (start, end) in doc.chunk_ranges() {
                let mut i = start;
                while i < end {
                    // Never interrupt a planted phrase with a connective.
                    let phrase_end = span_iter
                        .peek()
                        .filter(|&&&(s, _)| s as usize == i)
                        .map(|&&(_, e)| e as usize);
                    let unit_end = if let Some(e) = phrase_end {
                        span_iter.next();
                        e
                    } else {
                        i + 1
                    };
                    if !text.is_empty() && !text.ends_with(['.', ',']) && rng.gen_bool(0.25) {
                        text.push(' ');
                        text.push_str(CONNECTIVES[rng.gen_range(0..CONNECTIVES.len())]);
                    }
                    for t in i..unit_end {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(synth.corpus.vocab.word(doc.tokens[t]));
                    }
                    i = unit_end;
                }
                text.push(if rng.gen_bool(0.5) { '.' } else { ',' });
            }
            out.push(text);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::{cs_background, cs_topics};

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            name: "test".into(),
            n_docs: 50,
            units_per_doc: (6, 12),
            phrase_prob: 0.4,
            background_prob: 0.2,
            tail_prob: 0.3,
            tail_vocab: 30,
            punct_prob: 0.15,
            doc_topic_alpha: 0.2,
            zipf_exponent: 0.8,
            rare_words_per_topic: 12,
            rare_phrases_per_topic: 6,
            topics: cs_topics(),
            background: cs_background(),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = CorpusGenerator::new(small_config());
        let a = g.generate(99);
        let b = g.generate(99);
        assert_eq!(a.corpus.n_docs(), b.corpus.n_docs());
        for (da, db) in a.corpus.docs.iter().zip(&b.corpus.docs) {
            assert_eq!(da.tokens, db.tokens);
            assert_eq!(da.chunk_ends, db.chunk_ends);
        }
        assert_eq!(a.truth.phrase_spans, b.truth.phrase_spans);
    }

    #[test]
    fn different_seeds_differ() {
        let g = CorpusGenerator::new(small_config());
        let a = g.generate(1);
        let b = g.generate(2);
        assert_ne!(
            a.corpus
                .docs
                .iter()
                .map(|d| d.tokens.clone())
                .collect::<Vec<_>>(),
            b.corpus
                .docs
                .iter()
                .map(|d| d.tokens.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_is_structurally_valid() {
        let g = CorpusGenerator::new(small_config());
        let s = g.generate(7);
        s.corpus.validate().unwrap();
        assert_eq!(s.corpus.n_docs(), 50);
        assert_eq!(s.n_topics, 7);
        // Ground-truth arrays are parallel.
        for (d, doc) in s.corpus.docs.iter().enumerate() {
            assert_eq!(s.truth.token_topics[d].len(), doc.n_tokens());
            assert_eq!(s.truth.token_is_background[d].len(), doc.n_tokens());
        }
    }

    #[test]
    fn planted_spans_are_disjoint_in_order_and_within_chunks() {
        let g = CorpusGenerator::new(small_config());
        let s = g.generate(13);
        for (d, spans) in s.truth.phrase_spans.iter().enumerate() {
            let doc = &s.corpus.docs[d];
            let mut prev_end = 0u32;
            for &(a, b) in spans {
                assert!(a >= prev_end, "overlapping spans in doc {d}");
                assert!(b > a);
                assert!((b as usize) <= doc.n_tokens());
                prev_end = b;
                // Span lies within one chunk.
                let inside = doc
                    .chunk_ranges()
                    .any(|(cs, ce)| cs <= a as usize && b as usize <= ce);
                assert!(inside, "span ({a},{b}) crosses a chunk in doc {d}");
            }
        }
    }

    #[test]
    fn planted_spans_match_lexicon_entries() {
        let g = CorpusGenerator::new(small_config());
        let s = g.generate(21);
        let mut n_spans = 0;
        for (d, spans) in s.truth.phrase_spans.iter().enumerate() {
            let doc = &s.corpus.docs[d];
            for &(a, b) in spans {
                n_spans += 1;
                let seq = &doc.tokens[a as usize..b as usize];
                assert!(
                    s.truth.is_planted(seq),
                    "span not in lexicon: {:?}",
                    s.corpus.vocab.render(seq)
                );
            }
        }
        assert!(n_spans > 50, "too few phrases planted: {n_spans}");
    }

    #[test]
    fn topical_tokens_follow_their_topic_pool() {
        let g = CorpusGenerator::new(small_config());
        let s = g.generate(5);
        // Every non-background unigram token belongs to its planted topic's
        // pools (unigram or phrase vocabulary).
        let topic_vocab: Vec<FxHashSet<u32>> = g
            .config
            .topics
            .iter()
            .map(|t| {
                t.unigrams
                    .iter()
                    .map(|w| s.corpus.vocab.id(w).unwrap())
                    .chain(
                        t.phrases
                            .iter()
                            .flat_map(|p| p.split_whitespace())
                            .map(|w| s.corpus.vocab.id(w).unwrap()),
                    )
                    .collect()
            })
            .collect();
        for d in 0..s.corpus.n_docs() {
            let doc = &s.corpus.docs[d];
            for (i, &t) in doc.tokens.iter().enumerate() {
                if !s.truth.token_is_background[d][i] {
                    let z = s.truth.token_topics[d][i] as usize;
                    let word = s.corpus.vocab.word(t);
                    assert!(
                        topic_vocab[z].contains(&t) || word.starts_with(&format!("t{z}rare")),
                        "token '{word}' not in topic {z} vocab"
                    );
                }
            }
        }
    }

    #[test]
    fn tail_words_appear_but_rarely_dominate() {
        let g = CorpusGenerator::new(small_config());
        let s = g.generate(3);
        let counts = s.corpus.word_counts();
        let tail_total: u64 = s
            .corpus
            .vocab
            .iter()
            .filter(|(_, w)| w.starts_with("tail"))
            .map(|(id, _)| counts[id as usize])
            .sum();
        let total = s.corpus.n_tokens() as u64;
        assert!(tail_total > 0, "no tail words generated");
        assert!(
            (tail_total as f64) < 0.15 * total as f64,
            "tail dominates: {tail_total}/{total}"
        );
    }

    #[test]
    fn surface_texts_roundtrip_through_builder() {
        use topmine_corpus::CorpusBuilder;
        let mut cfg = small_config();
        cfg.n_docs = 20;
        let g = CorpusGenerator::new(cfg);
        let texts = g.generate_texts(11);
        assert_eq!(texts.len(), 20);
        let mut b = CorpusBuilder::default();
        for t in &texts {
            assert!(!t.is_empty());
            b.add_document(t);
        }
        let c = b.build();
        c.validate().unwrap();
        assert!(c.n_tokens() > 100);
    }
}
