//! Sampling primitives for the corpus simulator: weighted discrete pools
//! with Zipf-decayed weights, and Dirichlet draws via Marsaglia–Tsang gamma
//! sampling (hand-rolled; `rand_distr` is outside the offline dependency
//! set and the two routines below are small and well-tested).

use rand::Rng;

/// A discrete distribution over items, sampled by binary search over the
/// cumulative weight table.
#[derive(Debug, Clone)]
pub struct WeightedPool<T> {
    items: Vec<T>,
    cum: Vec<f64>,
}

impl<T> WeightedPool<T> {
    /// Build from `(item, weight)` pairs; weights must be positive.
    pub fn new(pairs: Vec<(T, f64)>) -> Self {
        let mut items = Vec::with_capacity(pairs.len());
        let mut cum = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            assert!(w > 0.0, "weights must be positive");
            acc += w;
            items.push(item);
            cum.push(acc);
        }
        Self { items, cum }
    }

    /// Build with Zipf-like rank weights `1 / (rank + 1)^s`.
    pub fn zipf(items: Vec<T>, s: f64) -> Self {
        let n = items.len();
        let pairs = items
            .into_iter()
            .zip((0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)))
            .collect();
        Self::new(pairs)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Sample one item (panics on an empty pool).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &T {
        let total = *self.cum.last().expect("sample from empty pool");
        let x = rng.gen_range(0.0..total);
        let idx = self.cum.partition_point(|&c| c <= x);
        &self.items[idx.min(self.items.len() - 1)]
    }

    pub fn items(&self) -> &[T] {
        &self.items
    }
}

/// One standard normal via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Gamma(shape, 1) sample by Marsaglia–Tsang (2000); the `shape < 1` case is
/// boosted through Gamma(shape + 1).
pub fn gamma_sample<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A symmetric Dirichlet(α) draw of dimension `k`.
pub fn dirichlet<R: Rng>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0);
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate underflow (tiny α): fall back to a random vertex.
        let winner = rng.gen_range(0..k);
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[winner] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

/// Sample an index from a normalized (or unnormalized) weight slice.
pub fn sample_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let x = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_pool_respects_weights() {
        let pool = WeightedPool::new(vec![("a", 9.0), ("b", 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = 0;
        for _ in 0..10_000 {
            if *pool.sample(&mut rng) == "a" {
                a += 1;
            }
        }
        assert!((8500..9500).contains(&a), "a drawn {a} times");
    }

    #[test]
    fn zipf_pool_orders_by_rank() {
        let pool = WeightedPool::zipf(vec![0usize, 1, 2, 3], 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[*pool.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for &shape in &[0.3, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for &alpha in &[0.05, 0.5, 5.0] {
            let theta = dirichlet(&mut rng, alpha, 10);
            assert_eq!(theta.len(), 10);
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut top_mass = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let theta = dirichlet(&mut rng, 0.05, 20);
            top_mass += theta.iter().cloned().fold(0.0, f64::max);
        }
        assert!(top_mass / trials as f64 > 0.6);
    }

    #[test]
    fn sample_index_covers_support() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = [0.2, 0.0, 0.8];
        let mut seen = [0usize; 3];
        for _ in 0..5000 {
            seen[sample_index(&mut rng, &w)] += 1;
        }
        assert!(seen[0] > 500);
        assert_eq!(seen[1], 0);
        assert!(seen[2] > 3000);
    }
}
