//! Topic lexicons for the synthetic corpora.
//!
//! Each lexicon is seeded from the paper's own result tables (Tables 1, 4,
//! 5, 6) so that a correct reproduction produces visualizations directly
//! comparable to the published ones: the planted phrases *are* the phrases
//! the paper reports discovering. Weights follow a Zipf-like decay by rank.

/// A topic's word and phrase pools.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Short human-readable name (used in reports and ground truth).
    pub name: &'static str,
    /// Topical unigrams, most characteristic first.
    pub unigrams: &'static [&'static str],
    /// Topical multi-word phrases, most characteristic first. Words within a
    /// phrase are space-separated; they are emitted contiguously.
    pub phrases: &'static [&'static str],
}

/// Background material shared by every topic of a corpus profile: the
/// high-frequency, weakly-topical words and boilerplate phrases the paper
/// observes polluting Yelp/abstract topics ("good", "paper we propose").
#[derive(Debug, Clone)]
pub struct BackgroundSpec {
    pub unigrams: &'static [&'static str],
    pub phrases: &'static [&'static str],
}

/// Computer-science topics (DBLP titles/abstracts, 20Conf). The five topics
/// mirror the paper's Table 4 (search/optimization, NLP, ML, PL, DM) plus
/// the Table 1 IR topic and a databases topic for breadth.
pub fn cs_topics() -> Vec<TopicSpec> {
    vec![
        TopicSpec {
            name: "search-optimization",
            unigrams: &[
                "problem",
                "algorithm",
                "optimal",
                "solution",
                "search",
                "solve",
                "constraint",
                "programming",
                "heuristic",
                "genetic",
                "optimization",
                "space",
                "function",
                "objective",
                "evolutionary",
                "local",
                "global",
                "cost",
                "bound",
                "approximation",
            ],
            phrases: &[
                "genetic algorithm",
                "optimization problem",
                "optimal solution",
                "solve this problem",
                "evolutionary algorithm",
                "local search",
                "search space",
                "optimization algorithm",
                "search algorithm",
                "objective function",
                "approximation algorithm",
                "np hard",
                "simulated annealing",
                "branch and bound",
            ],
        },
        TopicSpec {
            name: "nlp",
            unigrams: &[
                "word",
                "language",
                "text",
                "speech",
                "recognition",
                "character",
                "translation",
                "sentence",
                "grammar",
                "parsing",
                "corpus",
                "semantic",
                "syntactic",
                "lexical",
                "discourse",
                "morphology",
                "tagging",
                "dialogue",
                "linguistic",
                "phoneme",
            ],
            phrases: &[
                "natural language",
                "speech recognition",
                "language model",
                "natural language processing",
                "machine translation",
                "recognition system",
                "context free grammars",
                "sign language",
                "recognition rate",
                "character recognition",
                "word sense disambiguation",
                "part of speech tagging",
                "named entity recognition",
                "statistical machine translation",
            ],
        },
        TopicSpec {
            name: "machine-learning",
            unigrams: &[
                "data",
                "method",
                "learning",
                "clustering",
                "classification",
                "based",
                "feature",
                "proposed",
                "classifier",
                "model",
                "training",
                "kernel",
                "supervised",
                "label",
                "regression",
                "accuracy",
                "prediction",
                "ensemble",
                "sample",
                "vector",
            ],
            phrases: &[
                "data sets",
                "support vector machine",
                "learning algorithm",
                "machine learning",
                "feature selection",
                "clustering algorithm",
                "decision tree",
                "training data",
                "neural network",
                "semi supervised learning",
                "active learning",
                "dimensionality reduction",
                "markov blanket",
                "nearest neighbor",
            ],
        },
        TopicSpec {
            name: "programming-languages",
            unigrams: &[
                "programming",
                "language",
                "code",
                "type",
                "object",
                "implementation",
                "compiler",
                "java",
                "program",
                "execution",
                "memory",
                "runtime",
                "semantics",
                "static",
                "dynamic",
                "analysis",
                "software",
                "abstraction",
                "verification",
                "concurrency",
            ],
            phrases: &[
                "programming language",
                "source code",
                "object oriented",
                "type system",
                "data structure",
                "program execution",
                "run time",
                "code generation",
                "object oriented programming",
                "java programs",
                "static analysis",
                "model checking",
                "garbage collection",
                "points to analysis",
            ],
        },
        TopicSpec {
            name: "data-mining",
            unigrams: &[
                "data",
                "patterns",
                "mining",
                "rules",
                "set",
                "event",
                "time",
                "association",
                "stream",
                "large",
                "frequent",
                "itemset",
                "discovery",
                "sequence",
                "temporal",
                "spatial",
                "series",
                "anomaly",
                "outlier",
                "scalable",
            ],
            phrases: &[
                "data mining",
                "data sets",
                "association rules",
                "data streams",
                "time series",
                "data collection",
                "data analysis",
                "mining algorithms",
                "spatio temporal",
                "frequent itemsets",
                "frequent pattern mining",
                "candidate generation",
                "frequent patterns",
                "sequential patterns",
            ],
        },
        TopicSpec {
            name: "information-retrieval",
            unigrams: &[
                "search",
                "web",
                "retrieval",
                "information",
                "based",
                "model",
                "document",
                "query",
                "text",
                "social",
                "user",
                "ranking",
                "relevance",
                "engine",
                "page",
                "network",
                "topic",
                "content",
                "click",
                "index",
            ],
            phrases: &[
                "information retrieval",
                "social networks",
                "web search",
                "search engine",
                "information extraction",
                "web pages",
                "question answering",
                "text classification",
                "collaborative filtering",
                "topic model",
                "relevance feedback",
                "query expansion",
                "link analysis",
                "learning to rank",
            ],
        },
        TopicSpec {
            name: "databases",
            unigrams: &[
                "database",
                "system",
                "query",
                "transaction",
                "storage",
                "index",
                "relational",
                "schema",
                "processing",
                "distributed",
                "concurrency",
                "recovery",
                "join",
                "optimization",
                "xml",
                "view",
                "cache",
                "disk",
                "parallel",
                "log",
            ],
            phrases: &[
                "database systems",
                "query processing",
                "query optimization",
                "concurrency control",
                "b tree",
                "relational databases",
                "main memory",
                "transaction processing",
                "data integration",
                "query language",
                "access methods",
                "buffer management",
            ],
        },
    ]
}

/// Background pool for scientific abstracts: the boilerplate the paper calls
/// out in §8 ("background phrases like 'paper we propose' and 'proposed
/// method' ... due to their ubiquity in the corpus").
pub fn cs_background() -> BackgroundSpec {
    BackgroundSpec {
        unigrams: &[
            "paper",
            "approach",
            "results",
            "show",
            "present",
            "new",
            "propose",
            "based",
            "performance",
            "evaluation",
            "experimental",
            "study",
            "novel",
            "framework",
            "technique",
            "problem",
            "method",
            "system",
            "analysis",
            "application",
        ],
        phrases: &[
            "paper we propose",
            "proposed method",
            "experimental results",
            "state of the art",
            "results show",
            "case study",
            "real world",
        ],
    }
}

/// News topics mirroring the paper's Table 5 (AP News 1989): environment,
/// Christianity, Palestine/Israel conflict, Bush (senior) administration,
/// and health care.
pub fn news_topics() -> Vec<TopicSpec> {
    vec![
        TopicSpec {
            name: "environment-energy",
            unigrams: &[
                "plant",
                "nuclear",
                "environmental",
                "energy",
                "waste",
                "department",
                "power",
                "chemical",
                "pollution",
                "cleanup",
                "gas",
                "fuel",
                "radiation",
                "toxic",
                "emissions",
                "reactor",
                "safety",
                "contamination",
                "acid",
                "river",
            ],
            phrases: &[
                "energy department",
                "environmental protection agency",
                "nuclear weapons",
                "acid rain",
                "nuclear power plant",
                "hazardous waste",
                "savannah river",
                "rocky flats",
                "nuclear power",
                "natural gas",
                "greenhouse effect",
                "clean air",
            ],
        },
        TopicSpec {
            name: "religion",
            unigrams: &[
                "church",
                "catholic",
                "religious",
                "bishop",
                "pope",
                "roman",
                "jewish",
                "rev",
                "john",
                "christian",
                "faith",
                "priest",
                "worship",
                "congregation",
                "prayer",
                "baptist",
                "lutheran",
                "vatican",
                "clergy",
                "parish",
            ],
            phrases: &[
                "roman catholic",
                "pope john paul",
                "john paul",
                "catholic church",
                "anti semitism",
                "baptist church",
                "lutheran church",
                "episcopal church",
                "church members",
                "religious freedom",
                "holy land",
            ],
        },
        TopicSpec {
            name: "israel-palestine",
            unigrams: &[
                "palestinian",
                "israeli",
                "israel",
                "arab",
                "plo",
                "army",
                "reported",
                "west",
                "bank",
                "gaza",
                "occupied",
                "territories",
                "soldiers",
                "uprising",
                "jerusalem",
                "radio",
                "violence",
                "leadership",
                "militants",
                "peace",
            ],
            phrases: &[
                "gaza strip",
                "west bank",
                "palestine liberation organization",
                "united states",
                "arab reports",
                "prime minister",
                "yitzhak shamir",
                "israel radio",
                "occupied territories",
                "occupied west bank",
                "peace process",
                "israeli army",
            ],
        },
        TopicSpec {
            name: "bush-administration",
            unigrams: &[
                "bush",
                "house",
                "senate",
                "year",
                "bill",
                "president",
                "congress",
                "tax",
                "budget",
                "committee",
                "administration",
                "federal",
                "vote",
                "republican",
                "democrat",
                "spending",
                "deficit",
                "legislation",
                "capital",
                "washington",
            ],
            phrases: &[
                "president bush",
                "white house",
                "bush administration",
                "house and senate",
                "members of congress",
                "defense secretary",
                "capital gains tax",
                "pay raise",
                "house members",
                "committee chairman",
                "federal budget",
                "tax increase",
            ],
        },
        TopicSpec {
            name: "health-care",
            unigrams: &[
                "drug",
                "aid",
                "health",
                "hospital",
                "medical",
                "patients",
                "research",
                "test",
                "study",
                "disease",
                "doctors",
                "treatment",
                "virus",
                "cancer",
                "infection",
                "vaccine",
                "clinical",
                "care",
                "epidemic",
                "blood",
            ],
            phrases: &[
                "health care",
                "medical center",
                "united states",
                "aids virus",
                "drug abuse",
                "food and drug administration",
                "aids patients",
                "centers for disease control",
                "heart disease",
                "drug testing",
                "public health",
                "blood pressure",
            ],
        },
    ]
}

pub fn news_background() -> BackgroundSpec {
    BackgroundSpec {
        unigrams: &[
            "officials",
            "people",
            "government",
            "state",
            "told",
            "news",
            "week",
            "million",
            "country",
            "national",
            "public",
            "report",
            "spokesman",
            "city",
            "time",
            "group",
            "percent",
            "monday",
            "thursday",
            "friday",
        ],
        phrases: &[
            "news conference",
            "last week",
            "associated press",
            "per cent",
        ],
    }
}

/// Yelp review topics mirroring the paper's Table 6: breakfast/coffee,
/// Asian/Chinese food, hotels, grocery stores, Mexican food.
pub fn yelp_topics() -> Vec<TopicSpec> {
    vec![
        TopicSpec {
            name: "breakfast-coffee",
            unigrams: &[
                "coffee",
                "ice",
                "cream",
                "flavor",
                "egg",
                "chocolate",
                "breakfast",
                "tea",
                "cake",
                "sweet",
                "toast",
                "pancakes",
                "syrup",
                "bacon",
                "waffle",
                "muffin",
                "latte",
                "espresso",
                "donut",
                "brunch",
            ],
            phrases: &[
                "ice cream",
                "iced tea",
                "french toast",
                "hash browns",
                "frozen yogurt",
                "eggs benedict",
                "peanut butter",
                "cup of coffee",
                "iced coffee",
                "scrambled eggs",
                "whipped cream",
                "orange juice",
            ],
        },
        TopicSpec {
            name: "asian-food",
            unigrams: &[
                "food",
                "ordered",
                "chicken",
                "roll",
                "sushi",
                "restaurant",
                "dish",
                "rice",
                "noodles",
                "soup",
                "spicy",
                "sauce",
                "beef",
                "shrimp",
                "tofu",
                "curry",
                "menu",
                "lunch",
                "dinner",
                "flavor",
            ],
            phrases: &[
                "spring rolls",
                "fried rice",
                "egg rolls",
                "chinese food",
                "pad thai",
                "dim sum",
                "thai food",
                "lunch specials",
                "sushi rolls",
                "miso soup",
                "orange chicken",
                "noodle soup",
            ],
        },
        TopicSpec {
            name: "hotels",
            unigrams: &[
                "room", "parking", "hotel", "stay", "nice", "pool", "area", "staff", "desk",
                "clean", "bed", "lobby", "casino", "view", "night", "front", "floor", "check",
                "resort", "strip",
            ],
            phrases: &[
                "parking lot",
                "front desk",
                "spring training",
                "staying at the hotel",
                "dog park",
                "room was clean",
                "pool area",
                "staff is friendly",
                "free wifi",
                "valet parking",
                "room service",
                "lazy river",
            ],
        },
        TopicSpec {
            name: "shopping",
            unigrams: &[
                "store",
                "shop",
                "prices",
                "find",
                "buy",
                "selection",
                "items",
                "grocery",
                "market",
                "mall",
                "clothes",
                "deals",
                "cheap",
                "products",
                "staff",
                "aisles",
                "produce",
                "fresh",
                "brands",
                "stock",
            ],
            phrases: &[
                "grocery store",
                "great selection",
                "farmer's market",
                "great prices",
                "parking lot",
                "wal mart",
                "shopping center",
                "prices are reasonable",
                "love this place",
                "customer service",
                "whole foods",
                "trader joe's",
            ],
        },
        TopicSpec {
            name: "mexican-food",
            unigrams: &[
                "good",
                "food",
                "place",
                "burger",
                "ordered",
                "fries",
                "chicken",
                "tacos",
                "cheese",
                "salsa",
                "burrito",
                "beans",
                "chips",
                "carne",
                "asada",
                "guacamole",
                "margarita",
                "enchilada",
                "taco",
                "quesadilla",
            ],
            phrases: &[
                "mexican food",
                "chips and salsa",
                "hot dog",
                "rice and beans",
                "sweet potato fries",
                "carne asada",
                "mac and cheese",
                "fish tacos",
                "happy hour",
                "green chile",
                "street tacos",
                "refried beans",
            ],
        },
    ]
}

pub fn yelp_background() -> BackgroundSpec {
    BackgroundSpec {
        unigrams: &[
            "good",
            "place",
            "great",
            "love",
            "time",
            "service",
            "really",
            "nice",
            "best",
            "pretty",
            "definitely",
            "little",
            "friendly",
            "delicious",
            "amazing",
            "worth",
            "recommend",
            "staff",
            "price",
            "experience",
        ],
        phrases: &[
            "food was good",
            "pretty good",
            "great place",
            "love this place",
            "highly recommend",
            "come back",
            "first time",
        ],
    }
}

/// ACL-abstract-like NLP subtopics (small corpus, 2K abstracts in the paper).
pub fn acl_topics() -> Vec<TopicSpec> {
    vec![
        TopicSpec {
            name: "parsing",
            unigrams: &[
                "parsing",
                "grammar",
                "parser",
                "tree",
                "syntactic",
                "dependency",
                "sentence",
                "structure",
                "treebank",
                "derivation",
                "constituent",
                "formalism",
                "rules",
                "ambiguity",
                "chart",
            ],
            phrases: &[
                "dependency parsing",
                "context free grammar",
                "parse trees",
                "syntactic structure",
                "penn treebank",
                "tree adjoining grammar",
                "phrase structure",
                "chart parsing",
            ],
        },
        TopicSpec {
            name: "machine-translation",
            unigrams: &[
                "translation",
                "bilingual",
                "alignment",
                "source",
                "target",
                "english",
                "french",
                "decoder",
                "phrase",
                "reordering",
                "fluency",
                "parallel",
                "bleu",
                "corpus",
                "sentence",
            ],
            phrases: &[
                "machine translation",
                "statistical machine translation",
                "word alignment",
                "parallel corpus",
                "target language",
                "source language",
                "translation model",
                "bleu score",
            ],
        },
        TopicSpec {
            name: "speech",
            unigrams: &[
                "speech",
                "recognition",
                "acoustic",
                "phoneme",
                "speaker",
                "audio",
                "spoken",
                "prosody",
                "utterance",
                "transcription",
                "error",
                "rate",
                "signal",
                "hmm",
                "decoding",
            ],
            phrases: &[
                "speech recognition",
                "language model",
                "acoustic model",
                "word error rate",
                "spoken language",
                "hidden markov model",
                "speaker adaptation",
                "speech synthesis",
            ],
        },
        TopicSpec {
            name: "semantics",
            unigrams: &[
                "semantic",
                "word",
                "meaning",
                "sense",
                "lexical",
                "similarity",
                "ontology",
                "relation",
                "representation",
                "logic",
                "inference",
                "knowledge",
                "concept",
                "predicate",
                "embedding",
            ],
            phrases: &[
                "word sense disambiguation",
                "semantic role labeling",
                "lexical semantics",
                "semantic similarity",
                "word senses",
                "knowledge base",
                "semantic representation",
                "logical form",
            ],
        },
        TopicSpec {
            name: "discourse-sentiment",
            unigrams: &[
                "discourse",
                "sentiment",
                "opinion",
                "text",
                "document",
                "classification",
                "review",
                "topic",
                "annotation",
                "coherence",
                "summarization",
                "polarity",
                "subjective",
                "corpus",
                "feature",
            ],
            phrases: &[
                "sentiment analysis",
                "opinion mining",
                "discourse structure",
                "text summarization",
                "sentiment classification",
                "discourse relations",
                "topic models",
                "product reviews",
            ],
        },
    ]
}

pub fn acl_background() -> BackgroundSpec {
    BackgroundSpec {
        unigrams: &[
            "paper",
            "approach",
            "results",
            "show",
            "present",
            "model",
            "method",
            "system",
            "task",
            "performance",
            "propose",
            "evaluation",
            "based",
            "corpus",
            "data",
        ],
        phrases: &[
            "paper we present",
            "experimental results",
            "state of the art",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topmine_util::FxHashSet;

    fn check_topics(topics: &[TopicSpec]) {
        assert!(topics.len() >= 5);
        for t in topics {
            assert!(t.unigrams.len() >= 10, "{} unigram pool too small", t.name);
            assert!(t.phrases.len() >= 8, "{} phrase pool too small", t.name);
            for p in t.phrases {
                assert!(
                    p.split_whitespace().count() >= 2,
                    "{} phrase '{p}' is not multi-word",
                    t.name
                );
            }
            // No duplicates within pools.
            let us: FxHashSet<&str> = t.unigrams.iter().copied().collect();
            assert_eq!(us.len(), t.unigrams.len(), "{} dup unigrams", t.name);
            let ps: FxHashSet<&str> = t.phrases.iter().copied().collect();
            assert_eq!(ps.len(), t.phrases.len(), "{} dup phrases", t.name);
        }
    }

    #[test]
    fn all_lexicons_are_well_formed() {
        check_topics(&cs_topics());
        check_topics(&news_topics());
        check_topics(&yelp_topics());
        check_topics(&acl_topics());
    }

    #[test]
    fn paper_table_phrases_are_planted() {
        // Spot-check phrases the paper reports (Tables 1, 4, 5, 6).
        let cs: Vec<&str> = cs_topics()
            .iter()
            .flat_map(|t| t.phrases)
            .copied()
            .collect();
        for p in [
            "support vector machine",
            "information retrieval",
            "data mining",
            "frequent pattern mining",
        ] {
            assert!(cs.contains(&p), "missing cs phrase {p}");
        }
        let news: Vec<&str> = news_topics()
            .iter()
            .flat_map(|t| t.phrases)
            .copied()
            .collect();
        for p in ["white house", "gaza strip", "health care", "acid rain"] {
            assert!(news.contains(&p), "missing news phrase {p}");
        }
        let yelp: Vec<&str> = yelp_topics()
            .iter()
            .flat_map(|t| t.phrases)
            .copied()
            .collect();
        for p in ["ice cream", "spring rolls", "front desk", "chips and salsa"] {
            assert!(yelp.contains(&p), "missing yelp phrase {p}");
        }
    }

    #[test]
    fn backgrounds_have_material() {
        for bg in [
            cs_background(),
            news_background(),
            yelp_background(),
            acl_background(),
        ] {
            assert!(bg.unigrams.len() >= 10);
            assert!(!bg.phrases.is_empty());
        }
    }
}
