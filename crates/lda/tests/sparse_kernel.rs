//! The sparse bucketed singleton kernel must be the dense Eq. 7 posterior
//! in disguise: `s_k + r_k + q_k = (α_k + N_dk)(β + N_wk) / (Vβ + N_k)`
//! for every topic, exactly (a few ulps — documented tolerance 1e-12
//! relative), for arbitrary counts, hyperparameters, and sparsity
//! patterns. On top of the algebra, the draw path itself (alias table,
//! dirty-set stratification, region walks) must sample that distribution:
//! checked empirically against the dense weights.
//!
//! Cross-thread chain-level bit-identity under `KERNEL_VERSION = 2` is
//! pinned in `parallel_determinism.rs` (the proptests there run the
//! default sparse kernel at T ∈ {1, 2, 3, 7}).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topmine_lda::kernel::{
    sample_singleton_sparse, singleton_dense_weight, DocBucket, SmoothingBucket,
};

/// Per-topic smoothing mass, written exactly as `SmoothingBucket::rebuild`
/// and the dirty-walk compute it.
fn s_k(alpha: f64, beta: f64, v_beta: f64, n_k: u64) -> f64 {
    alpha * beta / (v_beta + n_k as f64)
}

/// Per-topic topic-word mass, written exactly as the q-loop computes it.
fn q_k(alpha: f64, n_dk: u32, n_wk: u32, v_beta: f64, n_k: u64) -> f64 {
    (alpha + n_dk as f64) * n_wk as f64 / (v_beta + n_k as f64)
}

fn nz_of<T: Copy + PartialEq + PartialOrd + Default>(row: &[T]) -> Vec<u16> {
    row.iter()
        .enumerate()
        .filter(|(_, &c)| c > T::default())
        .map(|(t, _)| t as u16)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The bucket decomposition, per topic, against live struct state:
    /// smoothing (formula identical to the rebuild path) + the DocBucket's
    /// actual `r[t]` + the q formula must reproduce the dense weight.
    #[test]
    fn bucket_sums_match_the_dense_singleton_weight(
        seed in 0u64..1_000_000,
        k in 2usize..12,
        vocab in 5usize..2000,
        beta in 0.001f64..2.0,
        alpha_lo in 0.01f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let v_beta = vocab as f64 * beta;
        let alpha: Vec<f64> = (0..k).map(|_| alpha_lo + rng.gen_range(0.0..2.0)).collect();
        let word_row: Vec<u32> = (0..k).map(|_| rng.gen_range(0..40u32)).collect();
        let doc_ndk: Vec<u32> = (0..k).map(|_| rng.gen_range(0..25u32)).collect();
        let n_k: Vec<u64> = word_row
            .iter()
            .map(|&w| u64::from(w) + rng.gen_range(0..100u64))
            .collect();
        let doc_nz = nz_of(&doc_ndk);

        let mut smoothing = SmoothingBucket::default();
        smoothing.rebuild(&alpha, beta, v_beta, &n_k);
        let mut doc = DocBucket::default();
        doc.begin_doc(&doc_nz, &doc_ndk, &n_k, beta, v_beta, k);

        let mut s_sum = 0.0;
        for t in 0..k {
            let s = s_k(alpha[t], beta, v_beta, n_k[t]);
            s_sum += s;
            let bucketed = s + doc.mass_of(t) + q_k(alpha[t], doc_ndk[t], word_row[t], v_beta, n_k[t]);
            let dense = singleton_dense_weight(alpha[t], beta, v_beta, word_row[t], doc_ndk[t], n_k[t]);
            prop_assert!(
                (bucketed - dense).abs() <= 1e-12 * dense.max(1e-300),
                "topic {t}: bucketed {bucketed:.17e} vs dense {dense:.17e}"
            );
        }
        let total = smoothing.current_total();
        prop_assert!(
            (total - s_sum).abs() <= 1e-12 * s_sum,
            "smoothing total {total:.17e} vs per-topic sum {s_sum:.17e}"
        );
    }

    /// `DocBucket::update_topic` after an arbitrary move sequence must
    /// agree with a from-scratch `begin_doc` on the final state.
    #[test]
    fn incremental_doc_bucket_matches_a_fresh_rebuild(
        seed in 0u64..1_000_000,
        k in 2usize..10,
        moves in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let beta = 0.05;
        let v_beta = 30.0 * beta;
        let mut doc_ndk: Vec<u32> = (0..k).map(|_| rng.gen_range(0..6u32)).collect();
        let mut n_k: Vec<u64> = doc_ndk.iter().map(|&c| u64::from(c) + rng.gen_range(0..20u64)).collect();
        let doc_nz = nz_of(&doc_ndk);

        let mut inc = DocBucket::default();
        inc.begin_doc(&doc_nz, &doc_ndk, &n_k, beta, v_beta, k);
        for _ in 0..moves {
            let t = rng.gen_range(0..k);
            if rng.gen_bool(0.5) {
                doc_ndk[t] += 1;
                n_k[t] += 1;
            } else if doc_ndk[t] > 0 {
                doc_ndk[t] -= 1;
                n_k[t] -= 1;
            }
            inc.update_topic(t, doc_ndk[t], beta, 1.0 / (v_beta + n_k[t] as f64));
        }

        let final_nz = nz_of(&doc_ndk);
        let mut fresh = DocBucket::default();
        fresh.begin_doc(&final_nz, &doc_ndk, &n_k, beta, v_beta, k);
        for t in 0..k {
            prop_assert!(
                (inc.mass_of(t) - fresh.mass_of(t)).abs() <= 1e-12,
                "topic {t}: incremental {:.17e} vs rebuilt {:.17e}",
                inc.mass_of(t),
                fresh.mass_of(t)
            );
        }
        prop_assert!((inc.total() - fresh.total()).abs() <= 1e-9 * fresh.total().max(1.0));
    }

    /// The dirty-set correction keeps the smoothing total exact under any
    /// pattern of `N_k` movement since the rebuild.
    #[test]
    fn dirty_corrected_smoothing_total_is_exact(
        seed in 0u64..1_000_000,
        k in 2usize..16,
        n_dirty in 0usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let beta = 0.02;
        let v_beta = 100.0 * beta;
        let alpha: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..2.0f64)).collect();
        let mut n_k: Vec<u64> = (0..k).map(|_| rng.gen_range(0..200u64)).collect();

        let mut smoothing = SmoothingBucket::default();
        smoothing.rebuild(&alpha, beta, v_beta, &n_k);
        for _ in 0..n_dirty.min(k) {
            let t = rng.gen_range(0..k);
            n_k[t] = rng.gen_range(0..400u64);
            smoothing.mark_dirty(t, alpha[t], beta, 1.0 / (v_beta + n_k[t] as f64));
        }

        let expected: f64 = (0..k).map(|t| s_k(alpha[t], beta, v_beta, n_k[t])).sum();
        let total = smoothing.current_total();
        prop_assert!(
            (total - expected).abs() <= 1e-12 * expected,
            "corrected total {total:.17e} vs direct sum {expected:.17e}"
        );
    }
}

/// End-to-end: 300k draws through `sample_singleton_sparse` — alias table,
/// dirty stratification, q/r/s region walks — against the normalized dense
/// posterior. Deterministic seed, 5σ binomial bands per topic.
#[test]
fn sparse_draw_frequencies_match_the_dense_posterior() {
    let k = 8;
    let beta = 0.03;
    let v_beta = 50.0 * beta;
    let alpha: Vec<f64> = (0..k).map(|t| 0.1 + 0.2 * t as f64).collect();
    // A realistic sparsity pattern: the word is active in 3 topics, the
    // document in 4, with overlap; n_k moved on two topics post-rebuild.
    let word_row: Vec<u32> = vec![0, 7, 0, 3, 0, 0, 12, 0];
    let doc_ndk: Vec<u32> = vec![2, 5, 0, 0, 1, 0, 3, 0];
    let n_k0: Vec<u64> = vec![40, 55, 13, 9, 30, 2, 61, 0];
    let mut n_k = n_k0.clone();

    let mut smoothing = SmoothingBucket::default();
    smoothing.rebuild(&alpha, beta, v_beta, &n_k0);
    n_k[1] += 9;
    n_k[5] -= 2;
    smoothing.mark_dirty(1, alpha[1], beta, 1.0 / (v_beta + n_k[1] as f64));
    smoothing.mark_dirty(5, alpha[5], beta, 1.0 / (v_beta + n_k[5] as f64));

    let word_nz: Vec<u16> = vec![1, 3, 6];
    let doc_nz: Vec<u16> = vec![0, 1, 4, 6];
    let mut doc = DocBucket::default();
    doc.begin_doc(&doc_nz, &doc_ndk, &n_k, beta, v_beta, k);

    let dense: Vec<f64> = (0..k)
        .map(|t| singleton_dense_weight(alpha[t], beta, v_beta, word_row[t], doc_ndk[t], n_k[t]))
        .collect();
    let total: f64 = dense.iter().sum();

    let n = 300_000usize;
    let mut counts = vec![0u64; k];
    let mut rng = StdRng::seed_from_u64(0xbead);
    let mut q_buf = Vec::new();
    for _ in 0..n {
        let t = sample_singleton_sparse(
            &mut rng, &alpha, v_beta, &word_row, &word_nz, &doc_ndk, &doc_nz, &n_k, &doc,
            &smoothing, &mut q_buf,
        );
        counts[t] += 1;
    }
    for t in 0..k {
        let p = dense[t] / total;
        let got = counts[t] as f64 / n as f64;
        let band = 5.0 * (p * (1.0 - p) / n as f64).sqrt() + 1e-9;
        assert!(
            (got - p).abs() <= band,
            "topic {t}: empirical {got:.5} vs dense {p:.5} (band {band:.5})"
        );
    }
}
