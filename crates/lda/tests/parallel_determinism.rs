//! The parallel-training contract, enforced:
//!
//! 1. `n_threads == 1` is the **exact historical chain** for its kernel
//!    version — recorded digests guard every z assignment, perplexity,
//!    and optimized hyperparameter bit-for-bit. `KernelMode::Dense` still
//!    reproduces the pre-kernel-refactor (version 1) digest; the default
//!    sparse bucketed kernel has its own digest, recorded once at the
//!    `KERNEL_VERSION = 2` bump (see `kernel::KERNEL_VERSION` for the
//!    re-record policy).
//! 2. Any `n_threads ≥ 2` produces **one** chain: identical z, counts, φ,
//!    and perplexity at 2, 3, and 7 threads (property-tested over seeds,
//!    topic counts, and groupings) — under both kernels.
//! 3. The parallel chain is a *different* (snapshot-sweep, Newman et al.
//!    2009) approximation than the sequential one — it must still mix and
//!    keep its count tables consistent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topmine_lda::{
    GroupedDoc, GroupedDocs, KernelMode, PhraseLda, TopicModelConfig, KERNEL_VERSION,
};

// ---------------------------------------------------------------------------
// 1. Sequential chain guard
// ---------------------------------------------------------------------------

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The frozen corpus the digest below was recorded on. Self-contained
/// (no rand/synth) so it can never drift with a dependency.
fn guard_docs() -> GroupedDocs {
    let mut s = 0xD1CEu64;
    let mut docs = Vec::new();
    for _ in 0..30 {
        let len = 20 + (splitmix(&mut s) % 40) as usize;
        let tokens: Vec<u32> = (0..len).map(|_| (splitmix(&mut s) % 40) as u32).collect();
        let mut group_ends = Vec::new();
        let mut pos = 0usize;
        while pos < len {
            let g = (1 + (splitmix(&mut s) % 5) as usize).min(len - pos);
            pos += g;
            group_ends.push(pos as u32);
        }
        docs.push(GroupedDoc { tokens, group_ends });
    }
    GroupedDocs {
        docs,
        vocab_size: 40,
    }
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn chain_digest(m: &PhraseLda) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in 0..m.docs().n_docs() {
        for g in 0..m.docs().docs[d].n_groups() {
            fnv(&mut h, &m.topic_of_group(d, g).to_le_bytes());
        }
    }
    fnv(&mut h, &m.perplexity().to_bits().to_le_bytes());
    for &a in m.alpha() {
        fnv(&mut h, &a.to_bits().to_le_bytes());
    }
    fnv(&mut h, &m.beta().to_bits().to_le_bytes());
    h
}

/// Recorded against the pre-kernel sampler (commit f54229b's
/// `PhraseLda::step`): 30 sweeps on `guard_docs()` with hyperparameter
/// optimization on. `KernelMode::Dense` consumes RNG exactly like that
/// sampler, so this version-1 digest stays pinned forever — if it moves,
/// the dense path no longer reproduces the historical chain.
const DENSE_SEQUENTIAL_CHAIN_DIGEST: u64 = 0x9f3c_d8fd_a25a_840e;

/// Recorded once at the `KERNEL_VERSION = 2` bump: the same run under the
/// default sparse bucketed kernel. The sparse draw consumes a different
/// RNG stream, so the chain differs draw-by-draw from the dense one while
/// being equal in law. Re-record only on a documented `KERNEL_VERSION`
/// bump (see `topmine_lda::kernel`).
const SPARSE_SEQUENTIAL_CHAIN_DIGEST: u64 = 0x7508_108e_3e16_e477;
const SPARSE_SEQUENTIAL_PERPLEXITY: f64 = 36.41142721749446;

fn digest_cfg(kernel: KernelMode) -> TopicModelConfig {
    TopicModelConfig {
        n_topics: 6,
        alpha: 2.0,
        beta: 0.05,
        seed: 42,
        optimize_every: 10,
        burn_in: 5,
        n_threads: 1,
        kernel,
    }
}

#[test]
fn dense_sequential_chain_matches_recorded_digest() {
    let mut m = PhraseLda::new(guard_docs(), digest_cfg(KernelMode::Dense));
    m.run(30);
    assert!((m.perplexity() - 36.353083845968506).abs() < 1e-12);
    assert_eq!(
        chain_digest(&m),
        DENSE_SEQUENTIAL_CHAIN_DIGEST,
        "KernelMode::Dense no longer reproduces the pre-refactor sequential chain"
    );
}

#[test]
fn sparse_sequential_chain_matches_recorded_digest() {
    assert_eq!(
        KERNEL_VERSION, 2,
        "KERNEL_VERSION moved — re-record the sparse digest below and document the bump"
    );
    let mut m = PhraseLda::new(guard_docs(), digest_cfg(KernelMode::Sparse));
    m.run(30);
    assert!(
        (m.perplexity() - SPARSE_SEQUENTIAL_PERPLEXITY).abs() < 1e-12,
        "sparse sequential perplexity drifted: got {:.15}",
        m.perplexity()
    );
    assert_eq!(
        chain_digest(&m),
        SPARSE_SEQUENTIAL_CHAIN_DIGEST,
        "sparse sequential chain digest drifted: got {:#018x}",
        chain_digest(&m)
    );
}

// ---------------------------------------------------------------------------
// 2. Cross-thread-count bit-identity
// ---------------------------------------------------------------------------

/// Random grouped corpus: `n_docs` docs over `vocab` words, group lengths
/// in `1..=max_group`.
fn random_docs(seed: u64, n_docs: usize, vocab: u32, max_group: usize) -> GroupedDocs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::new();
    for _ in 0..n_docs {
        let len = rng.gen_range(8..40usize);
        let tokens: Vec<u32> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
        let mut group_ends = Vec::new();
        let mut pos = 0usize;
        while pos < len {
            pos += rng.gen_range(1..=max_group).min(len - pos);
            group_ends.push(pos as u32);
        }
        docs.push(GroupedDoc { tokens, group_ends });
    }
    GroupedDocs {
        docs,
        vocab_size: vocab as usize,
    }
}

fn fit(docs: &GroupedDocs, k: usize, seed: u64, threads: usize, sweeps: usize) -> PhraseLda {
    let mut m = PhraseLda::new(
        docs.clone(),
        TopicModelConfig {
            n_topics: k,
            alpha: 0.7,
            beta: 0.02,
            seed,
            optimize_every: 7,
            burn_in: 3,
            n_threads: threads,
            ..TopicModelConfig::default()
        },
    );
    m.run(sweeps);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// lda_threads ∈ {2, 3, 7}: identical perplexity, z-assignments, and φ
    /// — the thread count must be invisible in the sampled chain.
    #[test]
    fn parallel_chain_is_identical_at_2_3_and_7_threads(
        corpus_seed in 0u64..1_000_000,
        chain_seed in 0u64..1_000_000,
        k in 2usize..7,
        max_group in 1usize..6,
        sweeps in 1usize..12,
    ) {
        let docs = random_docs(corpus_seed, 13, 25, max_group);
        let base = fit(&docs, k, chain_seed, 2, sweeps);
        let base_phi = base.phi();
        let base_pp = base.perplexity();
        for threads in [3usize, 7] {
            let m = fit(&docs, k, chain_seed, threads, sweeps);
            for d in 0..docs.n_docs() {
                for g in 0..docs.docs[d].n_groups() {
                    prop_assert_eq!(base.topic_of_group(d, g), m.topic_of_group(d, g));
                }
            }
            prop_assert_eq!(&base_phi, &m.phi());
            prop_assert_eq!(base_pp.to_bits(), m.perplexity().to_bits());
            prop_assert_eq!(base.counts(), m.counts());
        }
        base.check_counts().map_err(TestCaseError::fail)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The amortized snapshot chain (double buffer rolled forward by the
    /// barrier's sparse deltas) must equal a reference chain that re-clones
    /// the full `N_wk`/`N_k` tables before every sweep — bit-for-bit, at
    /// every intermediate sweep, for thread counts {1, 2, 3, 7}. (T = 1
    /// never snapshots; it is included to pin that invalidation is
    /// harmless on the sequential path.)
    #[test]
    fn amortized_snapshot_chain_equals_full_clone_chain(
        corpus_seed in 0u64..1_000_000,
        chain_seed in 0u64..1_000_000,
        k in 2usize..6,
        max_group in 1usize..5,
        sweeps in 2usize..10,
    ) {
        let docs = random_docs(corpus_seed, 11, 22, max_group);
        for threads in [1usize, 2, 3, 7] {
            let cfg = TopicModelConfig {
                n_topics: k,
                alpha: 0.7,
                beta: 0.02,
                seed: chain_seed,
                optimize_every: 5,
                burn_in: 2,
                n_threads: threads,
                ..TopicModelConfig::default()
            };
            let mut amortized = PhraseLda::new(docs.clone(), cfg.clone());
            let mut cloned = PhraseLda::new(docs.clone(), cfg);
            for sweep in 0..sweeps {
                amortized.step();
                // Forcing a stale snapshot makes every sweep pay the full
                // O(V·K) clone — the historical behavior.
                cloned.invalidate_snapshot();
                cloned.step();
                prop_assert_eq!(
                    amortized.counts(),
                    cloned.counts(),
                    "threads={} sweep={}",
                    threads,
                    sweep
                );
            }
            for d in 0..docs.n_docs() {
                for g in 0..docs.docs[d].n_groups() {
                    prop_assert_eq!(
                        amortized.topic_of_group(d, g),
                        cloned.topic_of_group(d, g)
                    );
                }
            }
            prop_assert_eq!(amortized.phi(), cloned.phi());
            prop_assert_eq!(
                amortized.perplexity().to_bits(),
                cloned.perplexity().to_bits()
            );
            amortized.check_counts().map_err(TestCaseError::fail)?;
        }
    }
}

#[test]
fn snapshot_is_cloned_once_then_rolled_forward() {
    let docs = random_docs(7, 12, 30, 4);
    let mut m = PhraseLda::new(
        docs,
        TopicModelConfig {
            n_topics: 4,
            alpha: 0.5,
            beta: 0.01,
            seed: 2,
            optimize_every: 0,
            burn_in: 0,
            n_threads: 3,
            ..TopicModelConfig::default()
        },
    );
    m.run(8);
    let stats = m.sweep_stats();
    assert_eq!(stats.parallel_sweeps, 8);
    assert_eq!(
        stats.snapshot_full_clones, 1,
        "only the first parallel sweep may pay the O(V·K) clone"
    );
    assert_eq!(stats.snapshot_cells_cloned, (30 * 4) as u64);
    assert!(stats.merge_delta_entries > 0);
    // Hyperparameter optimization reads but never writes counts, so it
    // must not invalidate the rolled-forward snapshot.
    m.optimize_hyperparameters();
    m.run(4);
    assert_eq!(m.sweep_stats().snapshot_full_clones, 1);
}

#[test]
fn parallel_and_sequential_start_from_the_same_state() {
    // Initialization is sequential in both modes: before any sweep the two
    // models are indistinguishable; they diverge only through the
    // documented snapshot-sweep approximation.
    let docs = random_docs(5, 10, 20, 4);
    let seq = fit(&docs, 4, 9, 1, 0);
    let par = fit(&docs, 4, 9, 8, 0);
    assert_eq!(seq.counts(), par.counts());
    assert_eq!(seq.perplexity().to_bits(), par.perplexity().to_bits());
    for d in 0..docs.n_docs() {
        for g in 0..docs.docs[d].n_groups() {
            assert_eq!(seq.topic_of_group(d, g), par.topic_of_group(d, g));
        }
    }
}

#[test]
fn more_threads_than_documents_is_fine() {
    let docs = random_docs(11, 3, 15, 3);
    let a = fit(&docs, 3, 1, 2, 6);
    let b = fit(&docs, 3, 1, 64, 6);
    assert_eq!(a.perplexity().to_bits(), b.perplexity().to_bits());
    a.check_counts().unwrap();
}

// ---------------------------------------------------------------------------
// 3. The parallel approximation still behaves like a Gibbs chain
// ---------------------------------------------------------------------------

#[test]
fn parallel_chain_mixes_and_reduces_perplexity() {
    let docs = random_docs(21, 24, 30, 4);
    let mut m = PhraseLda::new(
        docs,
        TopicModelConfig {
            n_topics: 4,
            alpha: 0.5,
            beta: 0.01,
            seed: 3,
            optimize_every: 0,
            burn_in: 0,
            n_threads: 4,
            ..TopicModelConfig::default()
        },
    );
    let before = m.perplexity();
    m.run(40);
    m.check_counts().unwrap();
    assert!(
        m.perplexity() < before,
        "parallel chain failed to mix: {before} -> {}",
        m.perplexity()
    );
}

#[test]
fn very_long_cliques_train_without_degenerating() {
    // Regression companion to the kernel's 200-token underflow test, end
    // to end: documents whose single clique spans 200 tokens used to give
    // an all-zero posterior and uniform draws; now the chain must
    // concentrate each document's clique on a dominant topic.
    let mut docs = Vec::new();
    for d in 0..12 {
        let base = if d % 2 == 0 { 0u32 } else { 10 };
        let tokens: Vec<u32> = (0..200).map(|i| base + (i % 10) as u32).collect();
        docs.push(GroupedDoc {
            tokens,
            group_ends: vec![200],
        });
    }
    let docs = GroupedDocs {
        docs,
        vocab_size: 20,
    };
    for threads in [1usize, 3] {
        let mut m = PhraseLda::new(
            docs.clone(),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 17,
                optimize_every: 0,
                burn_in: 0,
                n_threads: threads,
                ..TopicModelConfig::default()
            },
        );
        m.run(30);
        m.check_counts().unwrap();
        // Even/odd docs use disjoint vocabularies; with working posteriors
        // the two groups of documents separate into the two topics. Under
        // the old uniform-fallback behavior assignments stay random coin
        // flips and this split is essentially never clean.
        let even: Vec<u16> = (0..12).step_by(2).map(|d| m.topic_of_group(d, 0)).collect();
        let odd: Vec<u16> = (1..12).step_by(2).map(|d| m.topic_of_group(d, 0)).collect();
        assert!(
            even.iter().all(|&t| t == even[0]) && odd.iter().all(|&t| t == odd[0]),
            "threads={threads}: even={even:?} odd={odd:?}"
        );
        assert_ne!(even[0], odd[0], "threads={threads}");
    }
}
