//! Topic modeling for ToPMine (paper §5).
//!
//! * [`model`] — the grouped-document representation: documents as
//!   sequences of cliques (phrase instances), of which the bag-of-words LDA
//!   input is the singleton-group special case.
//! * [`kernel`] — the shared Eq. 7 clique-posterior kernel behind a
//!   [`kernel::CountsView`] seam (live counts, gathered snapshots, frozen
//!   φ) plus the single `sample_discrete`; used by training *and* by
//!   `topmine_serve`'s fold-in, so the two can never drift. Since
//!   `kernel::KERNEL_VERSION` 2 it also hosts the bucketed
//!   O(active-topics) singleton draw (smoothing/document/topic-word
//!   decomposition with an alias-served smoothing bucket).
//! * [`counts`] — the `N_dk`/`N_wk`/`N_k` count state the sampler mutates,
//!   snapshots, and merges, plus the sorted nonzero-topic indexes the
//!   sparse kernel iterates.
//! * [`sampler`] — the sweep scheduler over the kernel: the exact
//!   sequential chain (`n_threads == 1`) and the thread-sharded
//!   snapshot-and-merge sweep (bit-identical across all `n_threads ≥ 2`),
//!   training/held-out perplexity, and Minka fixed-point hyperparameter
//!   optimization (§5.3).
//! * [`io`] — TSV persistence for fitted models (φ, assignments,
//!   hyperparameters) behind a versioned bundle header.
//! * [`viz`] — topical-frequency ranking (Eq. 8) and the table renderer
//!   regenerating the layout of the paper's Tables 1 and 4-6.

pub mod counts;
pub mod io;
pub mod kernel;
pub mod model;
pub mod sampler;
pub mod viz;

pub use counts::TopicCounts;
pub use kernel::KERNEL_VERSION;
pub use model::{GroupedDoc, GroupedDocs};
pub use sampler::{FoldIn, KernelMode, PhraseLda, TopicModelConfig};
pub use topmine_obs::{DrawSplit, SweepTelemetry};
pub use viz::{
    background_phrases, render_topic_table, summarize_topics, summarize_topics_filtered,
    topical_frequencies, TopicSummary,
};
