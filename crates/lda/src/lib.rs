//! Topic modeling for ToPMine (paper §5).
//!
//! * [`model`] — the grouped-document representation: documents as
//!   sequences of cliques (phrase instances), of which the bag-of-words LDA
//!   input is the singleton-group special case.
//! * [`sampler`] — the collapsed Gibbs sampler implementing Eq. 7 (and thus
//!   plain LDA when every group has one token), training/held-out
//!   perplexity, and Minka fixed-point hyperparameter optimization (§5.3).
//! * [`io`] — TSV persistence for fitted models (φ, assignments,
//!   hyperparameters) behind a versioned bundle header.
//! * [`viz`] — topical-frequency ranking (Eq. 8) and the table renderer
//!   regenerating the layout of the paper's Tables 1 and 4-6.

pub mod io;
pub mod model;
pub mod sampler;
pub mod viz;

pub use model::{GroupedDoc, GroupedDocs};
pub use sampler::{FoldIn, PhraseLda, TopicModelConfig};
pub use viz::{
    background_phrases, render_topic_table, summarize_topics, summarize_topics_filtered,
    topical_frequencies, TopicSummary,
};
