//! Grouped-document representation shared by LDA and PhraseLDA.
//!
//! PhraseLDA's chain graph (paper Figure 2b) ties the latent topics of all
//! tokens in a phrase into a clique that takes a single topic value. We
//! therefore represent every document as a sequence of *groups*: a group is
//! a phrase instance from the segmentation, or a single token when running
//! plain LDA ("LDA is a special case of PhraseLDA", §7.4 — the same sampler
//! serves both by varying the grouping).

use topmine_corpus::Corpus;
use topmine_phrase::Segmentation;

/// One document as a sequence of token groups.
#[derive(Debug, Clone, Default)]
pub struct GroupedDoc {
    /// All tokens of the document, in order.
    pub tokens: Vec<u32>,
    /// Exclusive end offset of each group; last equals `tokens.len()`.
    pub group_ends: Vec<u32>,
}

impl GroupedDoc {
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }

    pub fn n_groups(&self) -> usize {
        self.group_ends.len()
    }

    /// Iterate `(start, end)` of each group.
    pub fn group_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let starts = std::iter::once(0).chain(self.group_ends.iter().map(|&e| e as usize));
        starts.zip(self.group_ends.iter().map(|&e| e as usize))
    }

    /// Token slice of group `g`.
    pub fn group(&self, g: usize) -> &[u32] {
        let start = if g == 0 {
            0
        } else {
            self.group_ends[g - 1] as usize
        };
        &self.tokens[start..self.group_ends[g] as usize]
    }
}

/// A whole corpus in grouped form.
#[derive(Debug, Clone, Default)]
pub struct GroupedDocs {
    pub docs: Vec<GroupedDoc>,
    pub vocab_size: usize,
}

impl GroupedDocs {
    /// Every token is its own group: plain LDA input (bag of words).
    pub fn unigrams(corpus: &Corpus) -> Self {
        let docs = corpus
            .docs
            .iter()
            .map(|d| GroupedDoc {
                tokens: d.tokens.clone(),
                group_ends: (1..=d.tokens.len() as u32).collect(),
            })
            .collect();
        Self {
            docs,
            vocab_size: corpus.vocab.len(),
        }
    }

    /// Groups are the segmentation's phrase instances: PhraseLDA input
    /// (bag of phrases).
    pub fn from_segmentation(corpus: &Corpus, seg: &Segmentation) -> Self {
        assert_eq!(
            corpus.docs.len(),
            seg.docs.len(),
            "segmentation must cover the corpus"
        );
        let docs = corpus
            .docs
            .iter()
            .zip(&seg.docs)
            .map(|(d, s)| GroupedDoc {
                tokens: d.tokens.clone(),
                group_ends: s.spans.iter().map(|&(_, e)| e).collect(),
            })
            .collect();
        Self {
            docs,
            vocab_size: corpus.vocab.len(),
        }
    }

    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    pub fn n_tokens(&self) -> usize {
        self.docs.iter().map(GroupedDoc::n_tokens).sum()
    }

    pub fn n_groups(&self) -> usize {
        self.docs.iter().map(GroupedDoc::n_groups).sum()
    }

    /// Largest group size (clique width).
    pub fn max_group_len(&self) -> usize {
        self.docs
            .iter()
            .flat_map(|d| d.group_ranges().map(|(s, e)| e - s))
            .max()
            .unwrap_or(0)
    }

    /// Structural validation for tests.
    pub fn validate(&self) -> Result<(), String> {
        for (i, d) in self.docs.iter().enumerate() {
            let mut prev = 0u32;
            for &e in &d.group_ends {
                if e <= prev {
                    return Err(format!("doc {i}: group ends not increasing"));
                }
                prev = e;
            }
            if prev as usize != d.tokens.len() {
                return Err(format!("doc {i}: groups do not cover tokens"));
            }
            if d.tokens.iter().any(|&t| t as usize >= self.vocab_size) {
                return Err(format!("doc {i}: token outside vocabulary"));
            }
        }
        Ok(())
    }

    /// Split into `(train, heldout)` by assigning every `1/ratio`-th
    /// document to the held-out set (deterministic round-robin, as is
    /// conventional for perplexity evaluation).
    pub fn split_heldout(&self, ratio: usize) -> (GroupedDocs, GroupedDocs) {
        assert!(ratio >= 2, "ratio must be >= 2");
        let mut train = Vec::new();
        let mut held = Vec::new();
        for (i, d) in self.docs.iter().enumerate() {
            if i % ratio == ratio - 1 {
                held.push(d.clone());
            } else {
                train.push(d.clone());
            }
        }
        (
            GroupedDocs {
                docs: train,
                vocab_size: self.vocab_size,
            },
            GroupedDocs {
                docs: held,
                vocab_size: self.vocab_size,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topmine_corpus::{Document, Vocab};

    fn corpus() -> Corpus {
        let mut vocab = Vocab::new();
        for w in ["a", "b", "c", "d"] {
            vocab.intern(w);
        }
        Corpus {
            vocab,
            docs: vec![
                Document::single_chunk(vec![0, 1, 2, 3]),
                Document::single_chunk(vec![2, 3]),
                Document::single_chunk(vec![]),
            ],
            provenance: None,
            unstem: None,
        }
    }

    #[test]
    fn unigram_grouping_is_lda_shape() {
        let g = GroupedDocs::unigrams(&corpus());
        g.validate().unwrap();
        assert_eq!(g.n_docs(), 3);
        assert_eq!(g.n_tokens(), 6);
        assert_eq!(g.n_groups(), 6);
        assert_eq!(g.max_group_len(), 1);
        assert_eq!(g.docs[0].group(2), &[2]);
    }

    #[test]
    fn segmentation_grouping_builds_cliques() {
        use topmine_phrase::{Segmentation, SegmentedDoc};
        let seg = Segmentation {
            docs: vec![
                SegmentedDoc {
                    spans: vec![(0, 2), (2, 4)],
                },
                SegmentedDoc {
                    spans: vec![(0, 1), (1, 2)],
                },
                SegmentedDoc { spans: vec![] },
            ],
            alpha: 5.0,
        };
        let g = GroupedDocs::from_segmentation(&corpus(), &seg);
        g.validate().unwrap();
        assert_eq!(g.n_groups(), 4);
        assert_eq!(g.max_group_len(), 2);
        assert_eq!(g.docs[0].group(0), &[0, 1]);
        assert_eq!(g.docs[0].group(1), &[2, 3]);
        let ranges: Vec<(usize, usize)> = g.docs[0].group_ranges().collect();
        assert_eq!(ranges, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn heldout_split_partitions_docs() {
        let g = GroupedDocs::unigrams(&corpus());
        let (train, held) = g.split_heldout(3);
        assert_eq!(train.n_docs(), 2);
        assert_eq!(held.n_docs(), 1);
        assert_eq!(train.n_docs() + held.n_docs(), g.n_docs());
    }

    #[test]
    fn validate_detects_bad_groups() {
        let g = GroupedDocs {
            docs: vec![GroupedDoc {
                tokens: vec![0, 1],
                group_ends: vec![1],
            }],
            vocab_size: 2,
        };
        assert!(g.validate().is_err());
    }
}
