//! Model persistence: save/load a fitted topic model's distributions and
//! the topic table, in plain TSV any downstream toolchain can read.
//!
//! What is persisted is the *inference result* (φ point estimates, the
//! per-group topic assignments, hyperparameters) — enough to resume
//! visualization, scoring, or fold-in without re-running Gibbs. The
//! grouped-document stream itself is saved by `topmine_corpus::io`.

use crate::sampler::PhraseLda;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write φ (K rows × V columns of probabilities) as TSV with a header row
/// of word ids.
pub fn save_phi(model: &PhraseLda, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let phi = model.phi();
    write!(out, "topic")?;
    for w in 0..model.vocab_size() {
        write!(out, "\tw{w}")?;
    }
    writeln!(out)?;
    for (t, row) in phi.iter().enumerate() {
        write!(out, "{t}")?;
        for p in row {
            write!(out, "\t{p:.17e}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read a φ matrix written by [`save_phi`]; returns `K × V` probabilities.
pub fn load_phi(path: &Path) -> io::Result<Vec<Vec<f64>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    let mut expected_cols: Option<usize> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue; // header
        }
        let mut fields = line.split('\t');
        let _topic = fields.next();
        let row: Result<Vec<f64>, _> = fields.map(str::parse).collect();
        let row = row.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("phi line {}: {e}", i + 1),
            )
        })?;
        if let Some(c) = expected_cols {
            if row.len() != c {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("phi line {}: ragged row ({} vs {c})", i + 1, row.len()),
                ));
            }
        } else {
            expected_cols = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty phi file"));
    }
    Ok(rows)
}

/// Write the per-group topic assignments: one line per document, topics
/// space-separated in group order (`3 0 3 | 1` style is *not* used — group
/// boundaries live with the saved corpus).
pub fn save_assignments(model: &PhraseLda, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for d in 0..model.docs().n_docs() {
        let n = model.docs().docs[d].n_groups();
        for g in 0..n {
            if g > 0 {
                write!(out, " ")?;
            }
            write!(out, "{}", model.topic_of_group(d, g))?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read assignments written by [`save_assignments`].
pub fn load_assignments(path: &Path) -> io::Result<Vec<Vec<u16>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut docs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let topics: Result<Vec<u16>, _> = line.split_whitespace().map(str::parse).collect();
        docs.push(topics.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("assignments line {}: {e}", i + 1),
            )
        })?);
    }
    Ok(docs)
}

/// Write hyperparameters (asymmetric α vector and β) as `key<TAB>value`.
pub fn save_hyperparameters(model: &PhraseLda, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "n_topics\t{}", model.n_topics())?;
    writeln!(out, "vocab_size\t{}", model.vocab_size())?;
    writeln!(out, "beta\t{:.10e}", model.beta())?;
    for (t, a) in model.alpha().iter().enumerate() {
        writeln!(out, "alpha{t}\t{a:.10e}")?;
    }
    out.flush()
}

/// Save the full model bundle (`phi.tsv`, `assignments.txt`, `hyper.tsv`)
/// into a directory.
pub fn save_model(model: &PhraseLda, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    save_phi(model, &dir.join("phi.tsv"))?;
    save_assignments(model, &dir.join("assignments.txt"))?;
    save_hyperparameters(model, &dir.join("hyper.tsv"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroupedDoc, GroupedDocs};
    use crate::sampler::TopicModelConfig;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("topmine-lda-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn model() -> PhraseLda {
        let docs = GroupedDocs {
            docs: (0..10)
                .map(|d| GroupedDoc {
                    tokens: vec![d % 4, (d + 1) % 4, (d + 2) % 4],
                    group_ends: vec![2, 3],
                })
                .collect(),
            vocab_size: 4,
        };
        let mut m = PhraseLda::new(docs, TopicModelConfig::new(3).with_seed(5));
        m.run(10);
        m
    }

    #[test]
    fn phi_roundtrip_preserves_probabilities() {
        let dir = tmpdir("phi");
        let m = model();
        let path = dir.join("phi.tsv");
        save_phi(&m, &path).unwrap();
        let loaded = load_phi(&path).unwrap();
        let phi = m.phi();
        assert_eq!(loaded.len(), phi.len());
        for (a, b) in phi.iter().zip(&loaded) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn assignments_roundtrip() {
        let dir = tmpdir("assign");
        let m = model();
        let path = dir.join("assignments.txt");
        save_assignments(&m, &path).unwrap();
        let loaded = load_assignments(&path).unwrap();
        assert_eq!(loaded.len(), 10);
        for (d, topics) in loaded.iter().enumerate() {
            assert_eq!(topics.len(), 2);
            for (g, &t) in topics.iter().enumerate() {
                assert_eq!(t, m.topic_of_group(d, g));
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bundle_save_and_hyper_content() {
        let dir = tmpdir("bundle");
        let m = model();
        save_model(&m, &dir).unwrap();
        assert!(dir.join("phi.tsv").exists());
        assert!(dir.join("assignments.txt").exists());
        let hyper = std::fs::read_to_string(dir.join("hyper.tsv")).unwrap();
        assert!(hyper.contains("n_topics\t3"));
        assert!(hyper.contains("beta\t"));
        assert!(hyper.contains("alpha2\t"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_phi_rejects_ragged_and_empty() {
        let dir = tmpdir("bad");
        let path = dir.join("phi.tsv");
        std::fs::write(&path, "topic\tw0\tw1\n0\t0.5\t0.5\n1\t1.0\n").unwrap();
        assert!(load_phi(&path).is_err());
        std::fs::write(&path, "topic\tw0\n").unwrap();
        assert!(load_phi(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
