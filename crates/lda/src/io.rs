//! Model persistence: save/load a fitted topic model's distributions and
//! the topic table, in plain TSV any downstream toolchain can read.
//!
//! What is persisted is the *inference result* (φ point estimates, the
//! per-group topic assignments, hyperparameters) — enough to resume
//! visualization, scoring, or fold-in without re-running Gibbs. The
//! grouped-document stream itself is saved by `topmine_corpus::io`.

use crate::sampler::PhraseLda;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Version tag written at the top of `hyper.tsv`; [`load_hyperparameters`]
/// (and thus [`load_model`]) refuses bundles carrying any other tag, with an
/// error naming both versions instead of a panic further downstream.
pub const LDA_BUNDLE_FORMAT: &str = "topmine-lda-bundle/1";

/// Write φ (K rows × V columns of probabilities) as TSV with a header row
/// of word ids.
pub fn save_phi(model: &PhraseLda, path: &Path) -> io::Result<()> {
    save_phi_matrix(&model.phi(), path)
}

/// Write an arbitrary `K × V` probability matrix in the [`save_phi`] format
/// (17 significant digits, so every `f64` round-trips bit-exactly).
pub fn save_phi_matrix(phi: &[Vec<f64>], path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    write!(out, "topic")?;
    for w in 0..phi.first().map_or(0, Vec::len) {
        write!(out, "\tw{w}")?;
    }
    writeln!(out)?;
    for (t, row) in phi.iter().enumerate() {
        write!(out, "{t}")?;
        for p in row {
            write!(out, "\t{p:.17e}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read a φ matrix written by [`save_phi`]; returns `K × V` probabilities.
pub fn load_phi(path: &Path) -> io::Result<Vec<Vec<f64>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    let mut expected_cols: Option<usize> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.is_empty() {
            continue; // header
        }
        let mut fields = line.split('\t');
        let _topic = fields.next();
        let mut row = Vec::new();
        for (col, field) in fields.enumerate() {
            let p: f64 = field.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "phi line {}, column {}: not a float: {field:?}",
                        i + 1,
                        col + 2, // 1-indexed, counting the leading topic column
                    ),
                )
            })?;
            row.push(p);
        }
        if let Some(c) = expected_cols {
            if row.len() != c {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "phi line {}: ragged row ({} columns, expected {c})",
                        i + 1,
                        row.len()
                    ),
                ));
            }
        } else {
            expected_cols = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty phi file"));
    }
    Ok(rows)
}

/// Write the per-group topic assignments: one line per document, topics
/// space-separated in group order (`3 0 3 | 1` style is *not* used — group
/// boundaries live with the saved corpus).
pub fn save_assignments(model: &PhraseLda, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for d in 0..model.docs().n_docs() {
        let n = model.docs().docs[d].n_groups();
        for g in 0..n {
            if g > 0 {
                write!(out, " ")?;
            }
            write!(out, "{}", model.topic_of_group(d, g))?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read assignments written by [`save_assignments`].
pub fn load_assignments(path: &Path) -> io::Result<Vec<Vec<u16>>> {
    let reader = BufReader::new(File::open(path)?);
    let mut docs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let topics: Result<Vec<u16>, _> = line.split_whitespace().map(str::parse).collect();
        docs.push(topics.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("assignments line {}: {e}", i + 1),
            )
        })?);
    }
    Ok(docs)
}

/// Write hyperparameters (asymmetric α vector and β) as `key<TAB>value`,
/// prefixed with the [`LDA_BUNDLE_FORMAT`] version tag.
pub fn save_hyperparameters(model: &PhraseLda, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "format\t{LDA_BUNDLE_FORMAT}")?;
    writeln!(out, "n_topics\t{}", model.n_topics())?;
    writeln!(out, "vocab_size\t{}", model.vocab_size())?;
    writeln!(out, "beta\t{:.17e}", model.beta())?;
    for (t, a) in model.alpha().iter().enumerate() {
        writeln!(out, "alpha{t}\t{a:.17e}")?;
    }
    out.flush()
}

/// The hyperparameter block of a saved bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperparameters {
    pub n_topics: usize,
    pub vocab_size: usize,
    pub beta: f64,
    /// Asymmetric document-topic Dirichlet, length `n_topics`.
    pub alpha: Vec<f64>,
}

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write a versioned `key<TAB>value` file readable by
/// [`read_versioned_kv`]: the `format` line first, then every pair in the
/// given order. Values are written verbatim, so callers format floats
/// themselves (the bundle convention is `{:.17e}` for exact round-trips).
pub fn save_versioned_kv<K, V>(
    path: &Path,
    format: &str,
    pairs: impl IntoIterator<Item = (K, V)>,
) -> io::Result<()>
where
    K: std::fmt::Display,
    V: std::fmt::Display,
{
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "format\t{format}")?;
    for (key, value) in pairs {
        writeln!(out, "{key}\t{value}")?;
    }
    out.flush()
}

/// Read a versioned `key<TAB>value` file: line 1 must be
/// `format<TAB>expected_format` (any other version fails with an error
/// naming both), empty lines are skipped, and the remaining pairs are
/// returned with their 1-indexed line numbers. Shared by this crate's
/// `hyper.tsv` and `topmine_serve`'s bundle `header.tsv` so the format
/// plumbing cannot drift between them.
pub fn read_versioned_kv(
    path: &Path,
    expected_format: &str,
) -> io::Result<Vec<(usize, String, String)>> {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let reader = BufReader::new(File::open(path)?);
    let mut pairs = Vec::new();
    let mut format_seen = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let (key, value) = line
            .split_once('\t')
            .ok_or_else(|| data_err(format!("{name} line {line_no}: not key<TAB>value")))?;
        if !format_seen {
            if key != "format" {
                return Err(data_err(format!(
                    "{name} has no versioned header: expected `format\t{expected_format}` \
                     on line 1, found key {key:?}"
                )));
            }
            if value != expected_format {
                return Err(data_err(format!(
                    "unsupported model bundle format {value:?} (this build reads \
                     {expected_format:?})"
                )));
            }
            format_seen = true;
            continue;
        }
        pairs.push((line_no, key.to_string(), value.to_string()));
    }
    if !format_seen {
        return Err(data_err(format!(
            "{name} is empty: expected a `format\t{expected_format}` versioned header"
        )));
    }
    Ok(pairs)
}

/// Assemble `alphaN` key/value pairs into a dense α vector of length
/// `n_topics`; errors name `context` (the file being parsed).
pub fn assemble_alpha(
    mut alphas: Vec<(usize, f64)>,
    n_topics: usize,
    context: &str,
) -> io::Result<Vec<f64>> {
    alphas.sort_by_key(|&(t, _)| t);
    if alphas.len() != n_topics || alphas.iter().enumerate().any(|(i, &(t, _))| i != t) {
        return Err(data_err(format!(
            "{context} alpha vector is not dense 0..{n_topics}"
        )));
    }
    Ok(alphas.into_iter().map(|(_, a)| a).collect())
}

/// Read hyperparameters written by [`save_hyperparameters`], verifying the
/// format version first.
pub fn load_hyperparameters(path: &Path) -> io::Result<Hyperparameters> {
    let mut n_topics = None;
    let mut vocab_size = None;
    let mut beta = None;
    let mut alphas: Vec<(usize, f64)> = Vec::new();
    for (line_no, key, value) in read_versioned_kv(path, LDA_BUNDLE_FORMAT)? {
        let bad_num = |k: &str| {
            data_err(format!(
                "hyper line {line_no}: bad number for {k}: {value:?}"
            ))
        };
        match key.as_str() {
            "n_topics" => n_topics = Some(value.parse().map_err(|_| bad_num("n_topics"))?),
            "vocab_size" => vocab_size = Some(value.parse().map_err(|_| bad_num("vocab_size"))?),
            "beta" => beta = Some(value.parse().map_err(|_| bad_num("beta"))?),
            k if k.starts_with("alpha") => {
                let t: usize = k["alpha".len()..]
                    .parse()
                    .map_err(|_| data_err(format!("hyper line {line_no}: bad key {k:?}")))?;
                alphas.push((t, value.parse().map_err(|_| bad_num(k))?));
            }
            other => {
                return Err(data_err(format!(
                    "hyper line {line_no}: unknown key {other:?}"
                )))
            }
        }
    }
    let n_topics = n_topics.ok_or_else(|| data_err("hyper.tsv missing n_topics".into()))?;
    let vocab_size = vocab_size.ok_or_else(|| data_err("hyper.tsv missing vocab_size".into()))?;
    let beta = beta.ok_or_else(|| data_err("hyper.tsv missing beta".into()))?;
    let alpha = assemble_alpha(alphas, n_topics, "hyper.tsv")?;
    Ok(Hyperparameters {
        n_topics,
        vocab_size,
        beta,
        alpha,
    })
}

/// Save the full model bundle (`phi.tsv`, `assignments.txt`, `hyper.tsv`)
/// into a directory.
pub fn save_model(model: &PhraseLda, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    save_phi(model, &dir.join("phi.tsv"))?;
    save_assignments(model, &dir.join("assignments.txt"))?;
    save_hyperparameters(model, &dir.join("hyper.tsv"))
}

/// A bundle read back from disk: everything [`save_model`] wrote.
#[derive(Debug, Clone)]
pub struct SavedModel {
    pub phi: Vec<Vec<f64>>,
    pub assignments: Vec<Vec<u16>>,
    pub hyper: Hyperparameters,
}

/// Load the full bundle written by [`save_model`], cross-checking shapes:
/// φ must be `n_topics × vocab_size` and every assignment must name a valid
/// topic. All failures are `io::Error`s, never panics.
pub fn load_model(dir: &Path) -> io::Result<SavedModel> {
    let hyper = load_hyperparameters(&dir.join("hyper.tsv"))?;
    let phi = load_phi(&dir.join("phi.tsv"))?;
    if phi.len() != hyper.n_topics {
        return Err(data_err(format!(
            "phi has {} topics but hyper.tsv says {}",
            phi.len(),
            hyper.n_topics
        )));
    }
    if let Some(row) = phi.iter().find(|r| r.len() != hyper.vocab_size) {
        return Err(data_err(format!(
            "phi rows have {} columns but hyper.tsv says vocab_size {}",
            row.len(),
            hyper.vocab_size
        )));
    }
    let assignments = load_assignments(&dir.join("assignments.txt"))?;
    if let Some(&t) = assignments
        .iter()
        .flatten()
        .find(|&&t| t as usize >= hyper.n_topics)
    {
        return Err(data_err(format!(
            "assignment topic {t} out of range (n_topics {})",
            hyper.n_topics
        )));
    }
    Ok(SavedModel {
        phi,
        assignments,
        hyper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroupedDoc, GroupedDocs};
    use crate::sampler::TopicModelConfig;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("topmine-lda-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn model() -> PhraseLda {
        let docs = GroupedDocs {
            docs: (0..10)
                .map(|d| GroupedDoc {
                    tokens: vec![d % 4, (d + 1) % 4, (d + 2) % 4],
                    group_ends: vec![2, 3],
                })
                .collect(),
            vocab_size: 4,
        };
        let mut m = PhraseLda::new(docs, TopicModelConfig::new(3).with_seed(5));
        m.run(10);
        m
    }

    #[test]
    fn phi_roundtrip_preserves_probabilities() {
        let dir = tmpdir("phi");
        let m = model();
        let path = dir.join("phi.tsv");
        save_phi(&m, &path).unwrap();
        let loaded = load_phi(&path).unwrap();
        let phi = m.phi();
        assert_eq!(loaded.len(), phi.len());
        for (a, b) in phi.iter().zip(&loaded) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn assignments_roundtrip() {
        let dir = tmpdir("assign");
        let m = model();
        let path = dir.join("assignments.txt");
        save_assignments(&m, &path).unwrap();
        let loaded = load_assignments(&path).unwrap();
        assert_eq!(loaded.len(), 10);
        for (d, topics) in loaded.iter().enumerate() {
            assert_eq!(topics.len(), 2);
            for (g, &t) in topics.iter().enumerate() {
                assert_eq!(t, m.topic_of_group(d, g));
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bundle_save_and_hyper_content() {
        let dir = tmpdir("bundle");
        let m = model();
        save_model(&m, &dir).unwrap();
        assert!(dir.join("phi.tsv").exists());
        assert!(dir.join("assignments.txt").exists());
        let hyper = std::fs::read_to_string(dir.join("hyper.tsv")).unwrap();
        assert!(hyper.contains("n_topics\t3"));
        assert!(hyper.contains("beta\t"));
        assert!(hyper.contains("alpha2\t"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_phi_rejects_ragged_and_empty() {
        let dir = tmpdir("bad");
        let path = dir.join("phi.tsv");
        std::fs::write(&path, "topic\tw0\tw1\n0\t0.5\t0.5\n1\t1.0\n").unwrap();
        assert!(load_phi(&path).is_err());
        std::fs::write(&path, "topic\tw0\n").unwrap();
        assert!(load_phi(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_phi_errors_name_line_and_column() {
        let dir = tmpdir("badcell");
        let path = dir.join("phi.tsv");
        std::fs::write(&path, "topic\tw0\tw1\n0\t0.5\t0.5\n1\t0.25\toops\n").unwrap();
        let err = load_phi(&path).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("column 3"), "{err}");
        assert!(err.contains("oops"), "{err}");
        // Ragged rows report both the found and expected column counts.
        std::fs::write(&path, "topic\tw0\tw1\n0\t0.5\t0.5\n1\t1.0\n").unwrap();
        let err = load_phi(&path).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("1 columns, expected 2"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn full_bundle_roundtrip() {
        let dir = tmpdir("roundtrip");
        let m = model();
        save_model(&m, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        assert_eq!(loaded.hyper.n_topics, m.n_topics());
        assert_eq!(loaded.hyper.vocab_size, m.vocab_size());
        assert_eq!(loaded.hyper.beta, m.beta());
        assert_eq!(loaded.hyper.alpha, m.alpha());
        assert_eq!(loaded.phi, m.phi());
        assert_eq!(loaded.assignments.len(), m.docs().n_docs());
        for (d, topics) in loaded.assignments.iter().enumerate() {
            for (g, &t) in topics.iter().enumerate() {
                assert_eq!(t, m.topic_of_group(d, g));
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn version_mismatch_is_a_clean_error() {
        let dir = tmpdir("version");
        let m = model();
        save_model(&m, &dir).unwrap();
        // A future-versioned bundle must be refused with a message naming
        // both versions, not mis-parsed.
        let hyper = dir.join("hyper.tsv");
        let body = std::fs::read_to_string(&hyper).unwrap();
        let tampered = body.replace(LDA_BUNDLE_FORMAT, "topmine-lda-bundle/99");
        std::fs::write(&hyper, tampered).unwrap();
        let err = load_model(&dir).unwrap_err().to_string();
        assert!(err.contains("topmine-lda-bundle/99"), "{err}");
        assert!(err.contains(LDA_BUNDLE_FORMAT), "{err}");
        // A header-less file (the pre-versioning format) is also refused.
        std::fs::write(&hyper, "n_topics\t3\nvocab_size\t4\nbeta\t1e-2\n").unwrap();
        let err = load_model(&dir).unwrap_err().to_string();
        assert!(err.contains("versioned header"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn versioned_kv_writer_roundtrips_through_the_reader() {
        let dir = tmpdir("kv");
        let path = dir.join("manifest.tsv");
        save_versioned_kv(
            &path,
            "topmine-test-kv/1",
            [
                ("n_shards", "3".to_string()),
                ("beta", format!("{:.17e}", 0.01f64)),
            ],
        )
        .unwrap();
        let pairs = read_versioned_kv(&path, "topmine-test-kv/1").unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].1, "n_shards");
        assert_eq!(pairs[0].2, "3");
        let beta: f64 = pairs[1].2.parse().unwrap();
        assert_eq!(beta, 0.01);
        // The reader still rejects the wrong version.
        assert!(read_versioned_kv(&path, "topmine-test-kv/2").is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bundle_shape_mismatches_are_errors() {
        let dir = tmpdir("shapes");
        let m = model();
        save_model(&m, &dir).unwrap();
        // Drop a φ row: topic count disagrees with hyper.tsv.
        let phi_path = dir.join("phi.tsv");
        let body = std::fs::read_to_string(&phi_path).unwrap();
        let truncated: Vec<&str> = body.lines().take(3).collect();
        std::fs::write(&phi_path, truncated.join("\n")).unwrap();
        let err = load_model(&dir).unwrap_err().to_string();
        assert!(err.contains("2 topics"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
