//! Topic visualization (paper §5.4).
//!
//! A topic is shown as its most probable unigrams (standard LDA practice)
//! *plus* its top phrases ranked by **topical frequency** (Eq. 8):
//! `TF(phr, k) = Σ_{d,g} I(PI_{d,g} == phr, C_{d,g} == k)` — the number of
//! phrase instances of `phr` whose clique was assigned topic `k` in the
//! final Gibbs state. This regenerates the layout of the paper's Tables 1,
//! 4, 5, and 6 (unigram row block, then n-gram row block, per topic).

use crate::sampler::PhraseLda;
use topmine_corpus::Corpus;
use topmine_util::{FxHashMap, TopK};

/// A rendered topic: top unigrams by φ and top phrases by topical frequency.
#[derive(Debug, Clone)]
pub struct TopicSummary {
    pub topic: usize,
    /// `(word, φ_k,w)` sorted descending.
    pub top_unigrams: Vec<(String, f64)>,
    /// `(phrase, TF)` sorted descending; only multi-word phrases.
    pub top_phrases: Vec<(String, u64)>,
}

/// A phrase type paired with a topic id — the key of Eq. 8's TF table.
pub type PhraseTopic = (Box<[u32]>, u16);

/// Compute Eq. 8's topical frequency for every (phrase, topic) pair, over
/// multi-word groups only.
pub fn topical_frequencies(model: &PhraseLda) -> FxHashMap<PhraseTopic, u64> {
    let mut tf: FxHashMap<PhraseTopic, u64> = FxHashMap::default();
    for d in 0..model.docs().n_docs() {
        let doc = &model.docs().docs[d];
        for (g, (s, e)) in doc.group_ranges().enumerate() {
            if e - s < 2 {
                continue;
            }
            let key = (
                doc.tokens[s..e].to_vec().into_boxed_slice(),
                model.topic_of_group(d, g),
            );
            *tf.entry(key).or_insert(0) += 1;
        }
    }
    tf
}

/// Summarize every topic with its `n_unigrams` top words and `n_phrases`
/// top phrases. Words/phrases are rendered through the corpus (so display
/// unstemming applies when available).
pub fn summarize_topics(
    model: &PhraseLda,
    corpus: &Corpus,
    n_unigrams: usize,
    n_phrases: usize,
) -> Vec<TopicSummary> {
    let k = model.n_topics();
    let tf = topical_frequencies(model);

    // Top phrases per topic.
    let mut phrase_top: Vec<TopK<Box<[u32]>>> = (0..k).map(|_| TopK::new(n_phrases)).collect();
    // Deterministic iteration: sort the TF map keys first.
    let mut tf_entries: Vec<(&PhraseTopic, &u64)> = tf.iter().collect();
    tf_entries.sort_by(|a, b| a.0.cmp(b.0));
    for ((phrase, topic), &count) in tf_entries {
        phrase_top[*topic as usize].push(count as f64, phrase.clone());
    }

    // Top unigrams per topic by φ.
    let phi = model.phi();
    (0..k)
        .map(|t| {
            let mut uni = TopK::new(n_unigrams);
            for (w, &p) in phi[t].iter().enumerate() {
                uni.push(p, w as u32);
            }
            let top_unigrams = uni
                .into_sorted_vec()
                .into_iter()
                .map(|(p, w)| (corpus.display_word(w).to_string(), p))
                .collect();
            let top_phrases = std::mem::replace(&mut phrase_top[t], TopK::new(0))
                .into_sorted_vec()
                .into_iter()
                .map(|(c, phrase)| (corpus.render_phrase(&phrase), c as u64))
                .collect();
            TopicSummary {
                topic: t,
                top_unigrams,
                top_phrases,
            }
        })
        .collect()
}

/// Render summaries side by side in the layout of the paper's Tables 4-6:
/// a `1-grams` block then an `n-grams` block, one column per topic.
pub fn render_topic_table(summaries: &[TopicSummary], n_rows: usize) -> String {
    use std::fmt::Write as _;
    let mut table = topmine_util::Table::new(
        std::iter::once("".to_string())
            .chain(summaries.iter().map(|s| format!("Topic {}", s.topic + 1))),
    );
    for r in 0..n_rows {
        let mut row = vec![if r == 0 {
            "1-grams".to_string()
        } else {
            String::new()
        }];
        for s in summaries {
            row.push(
                s.top_unigrams
                    .get(r)
                    .map(|(w, _)| w.clone())
                    .unwrap_or_default(),
            );
        }
        table.row(row);
    }
    for r in 0..n_rows {
        let mut row = vec![if r == 0 {
            "n-grams".to_string()
        } else {
            String::new()
        }];
        for s in summaries {
            row.push(
                s.top_phrases
                    .get(r)
                    .map(|(p, _)| p.clone())
                    .unwrap_or_default(),
            );
        }
        table.row(row);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.to_aligned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroupedDoc, GroupedDocs};
    use crate::sampler::TopicModelConfig;
    use topmine_corpus::{Document, Vocab};

    /// Corpus with two topic blocks and one planted phrase per block.
    fn setup() -> (Corpus, GroupedDocs) {
        let mut vocab = Vocab::new();
        for w in ["data", "mine", "query", "speech", "recog", "word"] {
            vocab.intern(w);
        }
        let mut docs = Vec::new();
        let mut gdocs = Vec::new();
        for d in 0..30 {
            let (tokens, ends): (Vec<u32>, Vec<u32>) = if d % 2 == 0 {
                // "data mine" phrase + unigrams.
                (vec![0, 1, 2, 0, 1, 2], vec![2, 3, 5, 6])
            } else {
                (vec![3, 4, 5, 3, 4, 5], vec![2, 3, 5, 6])
            };
            docs.push(Document::single_chunk(tokens.clone()));
            gdocs.push(GroupedDoc {
                tokens,
                group_ends: ends,
            });
        }
        (
            Corpus {
                vocab,
                docs,
                provenance: None,
                unstem: None,
            },
            GroupedDocs {
                docs: gdocs,
                vocab_size: 6,
            },
        )
    }

    fn trained() -> (Corpus, PhraseLda) {
        let (corpus, gdocs) = setup();
        let mut m = PhraseLda::new(
            gdocs,
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.3,
                beta: 0.01,
                seed: 17,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        m.run(60);
        (corpus, m)
    }

    #[test]
    fn topical_frequency_counts_multiword_instances() {
        let (_, m) = trained();
        let tf = topical_frequencies(&m);
        // 30 docs × 2 bigram groups each = 60 instances total.
        let total: u64 = tf.values().sum();
        assert_eq!(total, 60);
        // Only bigram keys present.
        assert!(tf.keys().all(|(p, _)| p.len() == 2));
    }

    #[test]
    fn summaries_separate_topics_and_rank_phrases() {
        let (corpus, m) = trained();
        let summaries = summarize_topics(&m, &corpus, 3, 3);
        assert_eq!(summaries.len(), 2);
        // One topic's top phrase should be "data mine", the other's
        // "speech recog".
        let tops: Vec<&str> = summaries
            .iter()
            .map(|s| s.top_phrases[0].0.as_str())
            .collect();
        assert!(tops.contains(&"data mine"), "tops = {tops:?}");
        assert!(tops.contains(&"speech recog"), "tops = {tops:?}");
        // Unigrams sorted descending by probability.
        for s in &summaries {
            for w in s.top_unigrams.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn render_produces_both_blocks() {
        let (corpus, m) = trained();
        let summaries = summarize_topics(&m, &corpus, 3, 3);
        let rendered = render_topic_table(&summaries, 3);
        assert!(rendered.contains("1-grams"));
        assert!(rendered.contains("n-grams"));
        assert!(rendered.contains("Topic 1"));
        assert!(rendered.contains("Topic 2"));
    }
}

/// Background-phrase filtering (paper §8 future work): "background phrases
/// like 'paper we propose' and 'proposed method' ... occur in the topical
/// representation due to their ubiquity in the corpus and should be
/// filtered in a principled manner to enhance separation and coherence".
///
/// The principle used here: a *topical* phrase concentrates its topical
/// frequency in few topics, while a background phrase spreads across many.
/// We score each phrase with the normalized entropy of its TF distribution
/// over topics (0 = perfectly topical, 1 = perfectly uniform) and drop
/// phrases above `max_entropy`, provided they have enough instances for the
/// entropy estimate to mean anything (`min_count`).
pub fn background_phrases(
    model: &PhraseLda,
    max_entropy: f64,
    min_count: u64,
) -> Vec<(Box<[u32]>, f64)> {
    let tf = topical_frequencies(model);
    let k = model.n_topics() as f64;
    if k <= 1.0 {
        return Vec::new();
    }
    // Aggregate TF per phrase across topics.
    let mut per_phrase: FxHashMap<Box<[u32]>, Vec<u64>> = FxHashMap::default();
    for ((phrase, topic), &c) in tf.iter() {
        per_phrase
            .entry(phrase.clone())
            .or_insert_with(|| vec![0; model.n_topics()])[*topic as usize] += c;
    }
    let mut out: Vec<(Box<[u32]>, f64)> = per_phrase
        .into_iter()
        .filter_map(|(phrase, counts)| {
            let total: u64 = counts.iter().sum();
            if total < min_count {
                return None;
            }
            let entropy: f64 = counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / total as f64;
                    -p * p.ln()
                })
                .sum();
            let normalized = entropy / k.ln();
            (normalized > max_entropy).then_some((phrase, normalized))
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// [`summarize_topics`] with background phrases removed (§8 extension).
pub fn summarize_topics_filtered(
    model: &PhraseLda,
    corpus: &Corpus,
    n_unigrams: usize,
    n_phrases: usize,
    max_entropy: f64,
    min_count: u64,
) -> Vec<TopicSummary> {
    use topmine_util::FxHashSet;
    let background: FxHashSet<String> = background_phrases(model, max_entropy, min_count)
        .into_iter()
        .map(|(p, _)| corpus.render_phrase(&p))
        .collect();
    // Over-fetch, filter, truncate.
    summarize_topics(model, corpus, n_unigrams, n_phrases + background.len())
        .into_iter()
        .map(|mut s| {
            s.top_phrases.retain(|(p, _)| !background.contains(p));
            s.top_phrases.truncate(n_phrases);
            s
        })
        .collect()
}

#[cfg(test)]
mod background_tests {
    use super::*;
    use crate::model::{GroupedDoc, GroupedDocs};
    use crate::sampler::TopicModelConfig;
    use topmine_corpus::{Document, Vocab};

    /// Two topics; phrase (0 1) belongs to topic A docs, phrase (2 3) to
    /// topic B docs, and phrase (4 5) is boilerplate present in all docs.
    fn setup() -> (Corpus, PhraseLda) {
        let mut vocab = Vocab::new();
        for w in ["a0", "a1", "b0", "b1", "bg0", "bg1"] {
            vocab.intern(w);
        }
        let mut docs = Vec::new();
        let mut gdocs = Vec::new();
        for d in 0..40 {
            let tokens: Vec<u32> = if d % 2 == 0 {
                vec![0, 1, 4, 5, 0, 1]
            } else {
                vec![2, 3, 4, 5, 2, 3]
            };
            docs.push(Document::single_chunk(tokens.clone()));
            gdocs.push(GroupedDoc {
                tokens,
                group_ends: vec![2, 4, 6],
            });
        }
        let corpus = Corpus {
            vocab,
            docs,
            provenance: None,
            unstem: None,
        };
        let mut m = PhraseLda::new(
            GroupedDocs {
                docs: gdocs,
                vocab_size: 6,
            },
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.3,
                beta: 0.01,
                seed: 23,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        m.run(80);
        (corpus, m)
    }

    #[test]
    fn boilerplate_has_high_entropy_and_is_flagged() {
        let (_, m) = setup();
        let bg = background_phrases(&m, 0.8, 5);
        let flagged: Vec<&[u32]> = bg.iter().map(|(p, _)| p.as_ref()).collect();
        assert!(
            flagged.contains(&&[4u32, 5][..]),
            "bg phrase not flagged: {flagged:?}"
        );
        assert!(!flagged.contains(&&[0u32, 1][..]));
        assert!(!flagged.contains(&&[2u32, 3][..]));
    }

    #[test]
    fn filtered_summaries_drop_background_only() {
        let (corpus, m) = setup();
        let plain = summarize_topics(&m, &corpus, 3, 5);
        let filtered = summarize_topics_filtered(&m, &corpus, 3, 5, 0.8, 5);
        let has = |ss: &[TopicSummary], p: &str| {
            ss.iter().any(|s| s.top_phrases.iter().any(|(q, _)| q == p))
        };
        assert!(has(&plain, "bg0 bg1"));
        assert!(!has(&filtered, "bg0 bg1"), "background phrase survived");
        assert!(has(&filtered, "a0 a1"));
        assert!(has(&filtered, "b0 b1"));
    }

    #[test]
    fn effective_topics_counts_occupied_topics() {
        let (_, m) = setup();
        // Both planted topics hold ~half the corpus.
        assert_eq!(m.effective_topics(0.2), 2);
        // No topic holds 90%.
        assert_eq!(m.effective_topics(0.9), 0);
        // Every topic holds at least 0%.
        assert_eq!(m.effective_topics(0.0), 2);
    }
}
