//! Collapsed Gibbs sampling for PhraseLDA (paper §5.3, Eq. 7).
//!
//! The sampler operates on *groups* (cliques). For a clique `C_{d,g}` of
//! size `s` the posterior over its single topic value `k` is
//!
//! ```text
//! p(C = k | W, Z¬C) ∝ ∏_{j=1..s} (α_k + N_dk¬C + j − 1)
//!                     · (β_{w_j} + N_{w_j,k}¬C + m_j) / (Σβ + N_k¬C + j − 1)
//! ```
//!
//! where `m_j` counts previous occurrences of word `w_j` *within the clique*
//! (the exact Gamma-ratio form from the paper's appendix; Eq. 7 prints the
//! common case of distinct words). With `s = 1` this reduces to the
//! standard LDA update, so plain LDA is run through the identical code path
//! with singleton groups — mirroring the paper's measurement setup ("the
//! same JAVA implementation of PhraseLDA is used (as LDA is a special case
//! of PhraseLDA)").
//!
//! The posterior itself lives in [`crate::kernel`] (shared with the serving
//! layer's fold-in); this module is the *scheduler*: it owns the chain
//! state ([`TopicCounts`] + per-group assignments) and decides how a sweep
//! walks the corpus.
//!
//! # Parallel sweeps
//!
//! With `n_threads == 1` a sweep is the classic sequential scan: every
//! update is visible to the next, the historical chain bit-for-bit. With
//! `n_threads = T ≥ 2` the sweep is *thread-sharded* in the style of
//! Newman et al.'s AD-LDA ("Distributed Algorithms for Topic Models", JMLR
//! 2009): the global `N_wk`/`N_k` tables are snapshotted, documents are
//! partitioned into contiguous shards, every document is sampled against
//! `snapshot + its own in-sweep delta` with an RNG stream derived from
//! `(seed, sweep, doc)`, and the per-shard count deltas merge at a barrier.
//!
//! Because each document's view and randomness are independent of which
//! shard it landed in, the chain is **bit-identical for every `T ≥ 2`** —
//! the same determinism contract the serving layer proves for sharded
//! inference. The parallel chain *does* differ from the sequential one
//! (cross-document updates within a sweep are deferred to the barrier);
//! that is the documented snapshot-sweep approximation, property-tested in
//! `tests/parallel_determinism.rs` rather than assumed away.

use crate::counts::{nz_insert, nz_remove, nz_row_insert, nz_row_remove, TopicCounts};
use crate::kernel::{
    clique_posterior, doc_stream_seed, sample_discrete, sample_singleton_sparse_split,
    CliqueScratch, DocBucket, FixedPhiView, SingletonBucket, SmoothingBucket, TrainView,
};
use crate::model::{GroupedDoc, GroupedDocs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use topmine_obs::{DrawSplit, SweepTelemetry, TraceEvent, TraceSink};
use topmine_util::stats::digamma;

/// Which Eq. 7 training kernel the sweeps use. Both kernels sample the
/// exact same posterior *distribution*; they consume the RNG differently,
/// so the two chains diverge draw-by-draw while remaining equal in law
/// (see [`crate::kernel::KERNEL_VERSION`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Dense O(K) posterior walk for every clique — the kernel-version-1
    /// chain, kept selectable (and digest-pinned in the determinism
    /// guards) for comparison.
    Dense,
    /// Bucketed O(active-topics) draw for singleton cliques (smoothing /
    /// document / topic-word decomposition with an alias-served smoothing
    /// bucket); multi-token cliques fall back to the dense path. The
    /// kernel-version-2 chain, and the default.
    #[default]
    Sparse,
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct TopicModelConfig {
    /// Number of topics K.
    pub n_topics: usize,
    /// Initial symmetric document-topic hyperparameter (each α_k starts at
    /// this; optimization may make the vector asymmetric).
    pub alpha: f64,
    /// Symmetric topic-word hyperparameter β.
    pub beta: f64,
    /// RNG seed for initialization and sweeps.
    pub seed: u64,
    /// Optimize α (asymmetric) and β every this many sweeps via Minka's
    /// fixed point; `0` disables (the paper disables it for timed runs).
    pub optimize_every: usize,
    /// Sweeps to run before the first hyperparameter update.
    pub burn_in: usize,
    /// Gibbs worker threads. `1` runs the exact sequential chain; `T ≥ 2`
    /// runs snapshot-and-merge sweeps whose result is bit-identical for
    /// every `T ≥ 2` (see module docs).
    pub n_threads: usize,
    /// Training kernel: sparse bucketed singleton draws (default) or the
    /// dense version-1 path.
    pub kernel: KernelMode,
}

impl Default for TopicModelConfig {
    fn default() -> Self {
        Self {
            n_topics: 10,
            alpha: 50.0 / 10.0,
            beta: 0.01,
            seed: 1,
            optimize_every: 0,
            burn_in: 50,
            n_threads: 1,
            kernel: KernelMode::default(),
        }
    }
}

impl TopicModelConfig {
    pub fn new(n_topics: usize) -> Self {
        Self {
            n_topics,
            // The conventional LDA default α = 50/K used by MALLET.
            alpha: 50.0 / n_topics as f64,
            ..Self::default()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_hyper_opt(mut self, every: usize, burn_in: usize) -> Self {
        self.optimize_every = every;
        self.burn_in = burn_in;
        self
    }

    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }
}

// Per-sweep telemetry (snapshot amortization, sweep timing, singleton
// draw split) lives in the shared [`topmine_obs::SweepTelemetry`] struct,
// surfaced by [`PhraseLda::sweep_stats`] and consumed by the `gibbs_fit`
// bench, the `--progress` flag, and the `TOPMINE_TRACE` sink.

/// Per-shard reusable sweep state: the scatter-gather buffers of the
/// thread-sharded sweep plus the kernel scratch and weight vector. One of
/// these lives per worker shard (and one for the sequential path),
/// allocated on first use and reused across documents *and* sweeps — the
/// steady-state fit loop performs no per-clique or per-document heap
/// allocation.
#[derive(Debug, Clone, Default)]
struct SweepScratch {
    /// Kernel scratch (within-clique multiplicities).
    clique: CliqueScratch,
    /// Unnormalized posterior over topics (length K).
    weights: Vec<f64>,
    /// Word → epoch of the document that last claimed the slot (length V).
    stamp: Vec<u32>,
    /// Word → doc-local id, valid when `stamp[w]` equals the current epoch.
    local_id: Vec<u32>,
    /// Distinct words of the current document, in first-seen order.
    distinct: Vec<u32>,
    /// The document's tokens remapped to doc-local ids.
    local_tokens: Vec<u32>,
    /// Gathered snapshot rows for the distinct words (`n_distinct × K`).
    local_wk: Vec<u32>,
    /// Gathered `N_k` (length K).
    local_nk: Vec<u64>,
    /// Stamp epoch of the document currently being gathered.
    epoch: u32,
    /// Sparse-kernel topic-word weights (length = current word's nnz).
    q_buf: Vec<f64>,
    /// Sparse-kernel smoothing bucket (alias table + dirty set).
    smoothing: SmoothingBucket,
    /// Sparse-kernel document bucket.
    doc_bucket: DocBucket,
    /// Gathered nonzero-topic lists for the distinct words (parallel
    /// sparse path; mirrors `local_wk` rows).
    local_nz: Vec<Vec<u16>>,
}

impl SweepScratch {
    /// Size the K-dependent buffers (no-op once sized).
    fn prepare(&mut self, k: usize) {
        if self.weights.len() != k {
            self.weights.clear();
            self.weights.resize(k, 0.0);
        }
        if self.local_nk.len() != k {
            self.local_nk.clear();
            self.local_nk.resize(k, 0);
        }
    }

    /// Advance the word-stamp epoch for a new document, (re)initializing
    /// the stamp table when the vocabulary size changes or the u32 epoch
    /// space wraps. Returns the epoch the document should stamp with.
    fn next_epoch(&mut self, v: usize) -> u32 {
        if self.stamp.len() != v {
            self.stamp.clear();
            self.stamp.resize(v, u32::MAX);
            self.local_id.clear();
            self.local_id.resize(v, 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.epoch == u32::MAX {
            self.stamp.fill(u32::MAX);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// The PhraseLDA (and LDA) collapsed Gibbs sampler.
#[derive(Debug, Clone)]
pub struct PhraseLda {
    docs: GroupedDocs,
    k: usize,
    v: usize,
    /// Document-topic Dirichlet (asymmetric after optimization).
    alpha: Vec<f64>,
    /// Symmetric topic-word Dirichlet.
    beta: f64,
    /// The `N_dk`/`N_wk`/`N_k` tables (plus the amortized snapshot
    /// double-buffer, see [`TopicCounts`]).
    counts: TopicCounts,
    /// Topic of each group: z[d][g].
    z: Vec<Vec<u16>>,
    /// Sequential-path RNG (initialization and `n_threads == 1` sweeps);
    /// parallel sweeps draw from per-document streams instead.
    rng: StdRng,
    sweeps_done: usize,
    config: TopicModelConfig,
    /// One reusable scratch per worker shard (index 0 doubles as the
    /// sequential sweep's scratch), persisted across sweeps.
    scratch: Vec<SweepScratch>,
    stats: SweepTelemetry,
    /// Optional JSONL sink receiving one event per sweep (from
    /// `TOPMINE_TRACE` by default; see [`PhraseLda::set_trace`]).
    trace: Option<Arc<TraceSink>>,
}

impl PhraseLda {
    /// Initialize with uniformly random topic assignments per group.
    /// Initialization is always sequential, so a parallel run starts from
    /// the same state as the sequential chain with the same seed.
    pub fn new(docs: GroupedDocs, config: TopicModelConfig) -> Self {
        let k = config.n_topics;
        assert!(k >= 1 && k <= u16::MAX as usize, "bad topic count");
        assert!(
            config.alpha > 0.0 && config.beta > 0.0,
            "hyperparameters must be positive"
        );
        debug_assert!(docs.validate().is_ok());
        let v = docs.vocab_size;
        let d = docs.n_docs();
        let mut model = Self {
            k,
            v,
            alpha: vec![config.alpha; k],
            beta: config.beta,
            counts: TopicCounts::new(d, v, k),
            z: Vec::with_capacity(d),
            rng: StdRng::seed_from_u64(config.seed),
            sweeps_done: 0,
            config,
            docs,
            scratch: Vec::new(),
            stats: SweepTelemetry::default(),
            trace: TraceSink::from_env(),
        };
        for d in 0..model.docs.n_docs() {
            let n_groups = model.docs.docs[d].n_groups();
            let mut zs = Vec::with_capacity(n_groups);
            for g in 0..n_groups {
                let topic = model.rng.gen_range(0..model.k) as u16;
                zs.push(topic);
                let (start, end) = model.group_range(d, g);
                model
                    .counts
                    .add_group(d, &model.docs.docs[d].tokens[start..end], topic);
            }
            model.z.push(zs);
        }
        model
    }

    /// Plain LDA over a corpus: singleton groups.
    pub fn lda(corpus: &topmine_corpus::Corpus, config: TopicModelConfig) -> Self {
        Self::new(GroupedDocs::unigrams(corpus), config)
    }

    #[inline]
    fn group_range(&self, d: usize, g: usize) -> (usize, usize) {
        let doc = &self.docs.docs[d];
        let start = if g == 0 {
            0
        } else {
            doc.group_ends[g - 1] as usize
        };
        (start, doc.group_ends[g] as usize)
    }

    /// One full Gibbs sweep over every group (Eq. 7 update per clique) —
    /// sequential or thread-sharded according to `config.n_threads`.
    pub fn step(&mut self) {
        let before = self.stats;
        let sweep_start = std::time::Instant::now();
        if self.config.n_threads > 1 {
            self.sweep_parallel(self.config.n_threads);
        } else {
            self.sweep_sequential();
        }
        self.stats.sweeps += 1;
        self.stats.sweep_nanos += sweep_start.elapsed().as_nanos() as u64;
        self.sweeps_done += 1;
        if self.config.optimize_every > 0
            && self.sweeps_done >= self.config.burn_in
            && self.sweeps_done.is_multiple_of(self.config.optimize_every)
        {
            self.optimize_hyperparameters();
        }
        if let Some(trace) = &self.trace {
            let d = self.stats.since(&before);
            trace.emit(
                TraceEvent::new("sweep")
                    .u64("sweep", self.sweeps_done as u64)
                    .str(
                        "kernel",
                        match self.config.kernel {
                            KernelMode::Sparse => "sparse",
                            KernelMode::Dense => "dense",
                        },
                    )
                    .u64("threads", self.config.n_threads.max(1) as u64)
                    .f64("secs", d.sweep_nanos as f64 / 1e9)
                    .f64("snapshot_secs", d.snapshot_nanos as f64 / 1e9)
                    .u64("snapshot_full_clones", d.snapshot_full_clones)
                    .u64("merge_delta_entries", d.merge_delta_entries)
                    .u64("draws_topic_word", d.draws.topic_word)
                    .u64("draws_doc", d.draws.doc)
                    .u64("draws_smoothing", d.draws.smoothing)
                    .u64("draws_dense", d.draws.dense),
            );
        }
    }

    /// The exact sequential sweep: every clique update is visible to the
    /// next. With the dense kernel this is the historical chain,
    /// bit-for-bit; the sparse kernel samples the same posterior through
    /// the bucketed singleton draw (its own deterministic chain, see
    /// [`KernelMode`]).
    fn sweep_sequential(&mut self) {
        let k = self.k;
        let v_beta = self.v as f64 * self.beta;
        let sparse = self.config.kernel == KernelMode::Sparse;
        if self.scratch.is_empty() {
            self.scratch.push(SweepScratch::default());
        }
        let scratch = &mut self.scratch[0];
        scratch.prepare(k);
        if sparse {
            scratch
                .smoothing
                .rebuild(&self.alpha, self.beta, v_beta, self.counts.n_k_table());
        }
        let mut draws = DrawSplit::default();

        for d in 0..self.docs.n_docs() {
            let n_groups = self.z[d].len();
            if sparse {
                // Rebuild cadence: the alias table goes stale as topics
                // dirty; refresh at document boundaries once the dirty
                // walk would cost a meaningful fraction of a dense scan.
                if smoothing_rebuild_due(scratch.smoothing.n_dirty(), k) {
                    scratch.smoothing.rebuild(
                        &self.alpha,
                        self.beta,
                        v_beta,
                        self.counts.n_k_table(),
                    );
                }
                scratch.doc_bucket.begin_doc(
                    self.counts.doc_nz(d),
                    self.counts.doc_row(d),
                    self.counts.n_k_table(),
                    self.beta,
                    v_beta,
                    k,
                );
            }
            let mut start = 0usize;
            for g in 0..n_groups {
                let end = self.docs.docs[d].group_ends[g] as usize;
                // Pull upcoming groups' word rows toward the cache while
                // this group samples — the words are effectively random
                // over V, so without the hint every group starts on a
                // cold `N_wk` row. Two tokens of lookahead: one group's
                // work is shorter than a DRAM round-trip.
                if let Some(&w_next) = self.docs.docs[d].tokens.get(end) {
                    self.counts.prefetch_word(w_next);
                }
                if let Some(&w_next2) = self.docs.docs[d].tokens.get(end + 1) {
                    self.counts.prefetch_word(w_next2);
                }
                let old = self.z[d][g];
                let tokens = &self.docs.docs[d].tokens[start..end];
                self.counts.remove_group(d, tokens, old);
                if sparse {
                    let t = old as usize;
                    let inv_den = 1.0 / (v_beta + self.counts.n_k_table()[t] as f64);
                    scratch.doc_bucket.update_topic(
                        t,
                        self.counts.doc_row(d)[t],
                        self.beta,
                        inv_den,
                    );
                    scratch
                        .smoothing
                        .mark_dirty(t, self.alpha[t], self.beta, inv_den);
                }
                let new = if sparse && tokens.len() == 1 {
                    let w = tokens[0];
                    let (t, bucket) = sample_singleton_sparse_split(
                        &mut self.rng,
                        &self.alpha,
                        v_beta,
                        self.counts.word_row(w),
                        self.counts.word_nz(w),
                        self.counts.doc_row(d),
                        self.counts.doc_nz(d),
                        self.counts.n_k_table(),
                        &scratch.doc_bucket,
                        &scratch.smoothing,
                        &mut scratch.q_buf,
                    );
                    tally_draw(&mut draws, bucket);
                    t as u16
                } else {
                    let view = TrainView::new(
                        self.counts.n_wk_table(),
                        self.counts.n_k_table(),
                        k,
                        self.beta,
                        v_beta,
                    );
                    clique_posterior(
                        &view,
                        &self.alpha,
                        self.counts.doc_row(d),
                        tokens,
                        &mut scratch.clique,
                        &mut scratch.weights,
                    );
                    draws.dense += 1;
                    sample_discrete(&mut self.rng, &scratch.weights) as u16
                };
                self.z[d][g] = new;
                self.counts.add_group(d, tokens, new);
                if sparse {
                    let t = new as usize;
                    let inv_den = 1.0 / (v_beta + self.counts.n_k_table()[t] as f64);
                    scratch.doc_bucket.update_topic(
                        t,
                        self.counts.doc_row(d)[t],
                        self.beta,
                        inv_den,
                    );
                    scratch
                        .smoothing
                        .mark_dirty(t, self.alpha[t], self.beta, inv_den);
                }
                start = end;
            }
        }
        self.stats.draws.merge(&draws);
    }

    /// One thread-sharded snapshot sweep (see module docs): bit-identical
    /// for every `threads ≥ 2`, regardless of how many cores actually run.
    ///
    /// The sweep-start snapshot is *amortized*: instead of cloning the
    /// full `N_wk`/`N_k` tables (O(V·K)) every sweep, [`TopicCounts`]
    /// keeps a double buffer that the previous barrier merge already
    /// rolled the sparse deltas into — producing this sweep's snapshot in
    /// O(nnz of the last sweep). A full clone happens only on the first
    /// parallel sweep (or after a sequential mutation invalidated the
    /// buffer), and the result is bit-identical either way.
    fn sweep_parallel(&mut self, threads: usize) {
        let n_docs = self.docs.n_docs();
        if n_docs == 0 {
            return;
        }
        // Sparse merge deltas index the V×K table through u32.
        assert!(
            self.v.saturating_mul(self.k) <= u32::MAX as usize,
            "vocab_size * n_topics exceeds the u32 delta index space"
        );
        let k = self.k;
        let v_beta = self.v as f64 * self.beta;
        let shards = threads.min(n_docs);
        let chunk = n_docs.div_ceil(shards);
        if self.scratch.len() < shards {
            self.scratch.resize_with(shards, SweepScratch::default);
        }
        // Sweep-start snapshot every document samples against: rolled
        // forward from the previous sweep when possible, cloned otherwise.
        let snap_start = std::time::Instant::now();
        let cells = self.counts.refresh_snapshot();
        if cells > 0 {
            self.stats.snapshot_full_clones += 1;
            self.stats.snapshot_cells_cloned += cells as u64;
        }
        self.stats.parallel_sweeps += 1;
        self.stats.snapshot_nanos += snap_start.elapsed().as_nanos() as u64;
        let views = self.counts.sweep_views();
        let (snap_wk, snap_k, ndk) = (views.snap_wk, views.snap_k, views.n_dk);
        let (nz_wk, nz_wk_len) = (views.nz_wk, views.nz_wk_len);
        let (nz_dk, nz_dk_len) = (views.nz_dk, views.nz_dk_len);
        let sparse = self.config.kernel == KernelMode::Sparse;
        let sweep = self.sweeps_done as u64;
        let seed = self.config.seed;
        let alpha = &self.alpha;
        let beta = self.beta;
        let docs = &self.docs.docs;
        let z = &mut self.z;
        let scratches = &mut self.scratch;
        let deltas: Vec<ShardDelta> = std::thread::scope(|scope| {
            let handles: Vec<_> = docs
                .chunks(chunk)
                .zip(z.chunks_mut(chunk))
                .zip(ndk.chunks_mut(chunk * k))
                .zip(nz_dk.chunks_mut(chunk * k))
                .zip(nz_dk_len.chunks_mut(chunk))
                .zip(scratches.iter_mut())
                .enumerate()
                .map(
                    |(
                        si,
                        (
                            ((((doc_shard, z_shard), ndk_shard), nz_dk_shard), nz_dk_len_shard),
                            scratch,
                        ),
                    )| {
                        scope.spawn(move || {
                            sweep_shard(
                                ShardCtx {
                                    docs: doc_shard,
                                    z: z_shard,
                                    ndk: ndk_shard,
                                    nz_dk: nz_dk_shard,
                                    nz_dk_len: nz_dk_len_shard,
                                    snap_wk,
                                    snap_k,
                                    nz_wk,
                                    nz_wk_len,
                                    alpha,
                                    k,
                                    beta,
                                    v_beta,
                                    seed,
                                    sweep,
                                    first_doc: si * chunk,
                                    sparse,
                                },
                                scratch,
                            )
                        })
                    },
                )
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gibbs worker panicked"))
                .collect()
        });
        // Barrier merge. Integer deltas commute, so the merged tables are
        // independent of shard count and merge order. apply_delta rolls
        // each delta into the snapshot buffer too, so the *next* sweep's
        // snapshot is already built by the time the merge finishes.
        let merge_start = std::time::Instant::now();
        for delta in &deltas {
            self.stats.merge_delta_entries += delta.wk.len() as u64;
            self.counts.apply_delta(&delta.wk, &delta.k);
            self.stats.draws.merge(&delta.draws);
        }
        self.stats.snapshot_nanos += merge_start.elapsed().as_nanos() as u64;
    }

    /// Run `iters` sweeps.
    pub fn run(&mut self, iters: usize) {
        for _ in 0..iters {
            self.step();
        }
    }

    /// Run `iters` sweeps, invoking `callback(sweep_index, &self)` after
    /// each (used by the perplexity-vs-iteration experiments, Figures 6/7).
    pub fn run_with<F: FnMut(usize, &Self)>(&mut self, iters: usize, mut callback: F) {
        for _ in 0..iters {
            self.step();
            callback(self.sweeps_done, self);
        }
    }

    // ----- accessors -------------------------------------------------------

    pub fn n_topics(&self) -> usize {
        self.k
    }

    pub fn vocab_size(&self) -> usize {
        self.v
    }

    pub fn docs(&self) -> &GroupedDocs {
        &self.docs
    }

    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The live count tables (read-only).
    pub fn counts(&self) -> &TopicCounts {
        &self.counts
    }

    /// Cumulative sweep telemetry (timing, snapshot amortization,
    /// singleton-draw split) accumulated over all sweeps so far.
    pub fn sweep_stats(&self) -> SweepTelemetry {
        self.stats
    }

    /// Replace the per-sweep trace sink (defaults to the `TOPMINE_TRACE`
    /// environment sink, or none). Pass `None` to silence tracing.
    pub fn set_trace(&mut self, trace: Option<Arc<TraceSink>>) {
        self.trace = trace;
    }

    /// Drop the amortized sweep snapshot, forcing the next parallel sweep
    /// to re-clone the full `N_wk`/`N_k` tables. The chain is unaffected
    /// (an amortized snapshot is bit-identical to a clone); this exists so
    /// benchmarks can measure the historical clone-per-sweep cost and so
    /// tests can prove the equivalence.
    pub fn invalidate_snapshot(&mut self) {
        self.counts.invalidate_snapshot();
    }

    /// Topic currently assigned to group `g` of document `d`.
    pub fn topic_of_group(&self, d: usize, g: usize) -> u16 {
        self.z[d][g]
    }

    /// Point estimate of the topic-word distribution φ (K × V).
    pub fn phi(&self) -> Vec<Vec<f64>> {
        let v_beta = self.v as f64 * self.beta;
        (0..self.k)
            .map(|t| {
                let den = self.counts.n_k(t) as f64 + v_beta;
                (0..self.v)
                    .map(|w| (self.counts.n_wk(w as u32, t) as f64 + self.beta) / den)
                    .collect()
            })
            .collect()
    }

    /// Point estimate of the document-topic distribution θ (D × K).
    pub fn theta(&self) -> Vec<Vec<f64>> {
        let alpha_sum: f64 = self.alpha.iter().sum();
        (0..self.docs.n_docs())
            .map(|d| {
                let n_d = self.docs.docs[d].n_tokens() as f64;
                let den = n_d + alpha_sum;
                (0..self.k)
                    .map(|t| (self.counts.n_dk(d, t) as f64 + self.alpha[t]) / den)
                    .collect()
            })
            .collect()
    }

    /// Number of *effective* topics: topics holding at least `min_share` of
    /// all assigned tokens. A cheap data-driven estimate of how many of the
    /// K requested topics the corpus actually uses — a pragmatic stand-in
    /// for the nonparametric prior the paper's §8 proposes as future work
    /// (run with generous K, read off the occupied topics).
    pub fn effective_topics(&self, min_share: f64) -> usize {
        let total: u64 = (0..self.k).map(|t| self.counts.n_k(t)).sum();
        if total == 0 {
            return 0;
        }
        (0..self.k)
            .filter(|&t| self.counts.n_k(t) as f64 / total as f64 >= min_share)
            .count()
    }

    /// Count of word `w` in topic `t`.
    pub fn word_topic_count(&self, w: u32, t: usize) -> u32 {
        self.counts.n_wk(w, t)
    }

    pub fn topic_count(&self, t: usize) -> u64 {
        self.counts.n_k(t)
    }

    // ----- perplexity ------------------------------------------------------

    /// Training-corpus perplexity from the current counts:
    /// `exp(−Σ log p(w|d) / N)` with `p(w|d) = Σ_k θ̂_dk φ̂_kw`.
    ///
    /// Tokens are scored individually for both LDA and PhraseLDA, so the
    /// two models' curves are directly comparable (Figures 6 and 7).
    pub fn perplexity(&self) -> f64 {
        let mut log_lik = 0.0f64;
        let mut n = 0u64;
        let alpha_sum: f64 = self.alpha.iter().sum();
        let v_beta = self.v as f64 * self.beta;
        // Precompute φ column denominators.
        let phi_den: Vec<f64> = (0..self.k)
            .map(|t| self.counts.n_k(t) as f64 + v_beta)
            .collect();
        for d in 0..self.docs.n_docs() {
            let doc = &self.docs.docs[d];
            if doc.tokens.is_empty() {
                continue;
            }
            let theta_den = doc.n_tokens() as f64 + alpha_sum;
            let theta: Vec<f64> = (0..self.k)
                .map(|t| (self.counts.n_dk(d, t) as f64 + self.alpha[t]) / theta_den)
                .collect();
            for &w in &doc.tokens {
                let mut p = 0.0;
                for t in 0..self.k {
                    p += theta[t] * (self.counts.n_wk(w, t) as f64 + self.beta) / phi_den[t];
                }
                log_lik += p.ln();
                n += 1;
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        (-log_lik / n as f64).exp()
    }

    /// Held-out perplexity by document completion.
    ///
    /// For each held-out document, the even-indexed *groups* are observed
    /// and the odd-indexed groups are scored — so two models sharing one
    /// grouping score exactly the same unseen tokens. Fold-in estimates θ
    /// with a short Gibbs chain over the observed half with φ frozen at the
    /// training counts. `fold_in` selects the fold-in unit:
    ///
    /// * [`FoldIn::Groups`] — one topic per observed group (PhraseLDA's own
    ///   inference assumption, Eq. 7 with frozen φ);
    /// * [`FoldIn::Tokens`] — one topic per observed token (plain LDA).
    ///
    /// Comparing PhraseLDA(`Groups`) against LDA(`Tokens`) over the same
    /// grouping evaluates each model under its own assumption on identical
    /// unseen tokens — the paper's Figures 6 and 7 comparison.
    pub fn heldout_perplexity(
        &self,
        heldout: &GroupedDocs,
        fold_iters: usize,
        seed: u64,
        fold_in: FoldIn,
    ) -> f64 {
        assert_eq!(heldout.vocab_size, self.v, "vocabulary mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let v_beta = self.v as f64 * self.beta;
        let phi_den: Vec<f64> = (0..self.k)
            .map(|t| self.counts.n_k(t) as f64 + v_beta)
            .collect();
        let view = FixedPhiView::new(self.counts.n_wk_table(), &phi_den, self.k, self.beta);
        let alpha_sum: f64 = self.alpha.iter().sum();

        let mut log_lik = 0.0f64;
        let mut n = 0u64;
        let mut weights = vec![0.0f64; self.k];
        let mut scratch = CliqueScratch::default();

        for doc in &heldout.docs {
            if doc.n_groups() < 2 {
                continue;
            }
            // Observed half: even groups, as fold-in units.
            let observed: Vec<(usize, usize)> = match fold_in {
                FoldIn::Groups => doc
                    .group_ranges()
                    .enumerate()
                    .filter(|(g, _)| g % 2 == 0)
                    .map(|(_, r)| r)
                    .collect(),
                FoldIn::Tokens => doc
                    .group_ranges()
                    .enumerate()
                    .filter(|(g, _)| g % 2 == 0)
                    .flat_map(|(_, (s, e))| (s..e).map(|i| (i, i + 1)))
                    .collect(),
            };
            let mut local_ndk = vec![0u32; self.k];
            let mut local_z: Vec<u16> = Vec::with_capacity(observed.len());
            let mut n_obs = 0u32;
            for &(s, e) in &observed {
                let t = rng.gen_range(0..self.k) as u16;
                local_ndk[t as usize] += (e - s) as u32;
                n_obs += (e - s) as u32;
                local_z.push(t);
            }
            for _ in 0..fold_iters {
                for (gi, &(s, e)) in observed.iter().enumerate() {
                    let old = local_z[gi] as usize;
                    local_ndk[old] -= (e - s) as u32;
                    clique_posterior(
                        &view,
                        &self.alpha,
                        &local_ndk,
                        &doc.tokens[s..e],
                        &mut scratch,
                        &mut weights,
                    );
                    let new = sample_discrete(&mut rng, &weights);
                    local_z[gi] = new as u16;
                    local_ndk[new] += (e - s) as u32;
                }
            }
            let theta_den = n_obs as f64 + alpha_sum;
            let theta: Vec<f64> = (0..self.k)
                .map(|t| (local_ndk[t] as f64 + self.alpha[t]) / theta_den)
                .collect();
            // Score the unseen half: odd groups.
            for (g, (s, e)) in doc.group_ranges().enumerate() {
                if g % 2 == 0 {
                    continue;
                }
                for i in s..e {
                    let w = doc.tokens[i];
                    let mut p = 0.0;
                    for t in 0..self.k {
                        p += theta[t] * (self.counts.n_wk(w, t) as f64 + self.beta) / phi_den[t];
                    }
                    log_lik += p.ln();
                    n += 1;
                }
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        (-log_lik / n as f64).exp()
    }

    // ----- hyperparameter optimization (paper §5.3, Minka 2000) ------------

    /// One round of Minka's fixed-point updates: asymmetric α, symmetric β.
    pub fn optimize_hyperparameters(&mut self) {
        self.optimize_alpha(3);
        self.optimize_beta(3);
    }

    /// Fixed-point iteration for the document-topic Dirichlet:
    /// `α_k ← α_k · (Σ_d ψ(N_dk + α_k) − D ψ(α_k)) / (Σ_d ψ(N_d + Σα) − D ψ(Σα))`.
    pub fn optimize_alpha(&mut self, rounds: usize) {
        let d_count = self.docs.n_docs();
        if d_count == 0 {
            return;
        }
        let doc_lens: Vec<f64> = self.docs.docs.iter().map(|d| d.n_tokens() as f64).collect();
        for _ in 0..rounds {
            let alpha_sum: f64 = self.alpha.iter().sum();
            let den: f64 = doc_lens
                .iter()
                .map(|&n| digamma(n + alpha_sum))
                .sum::<f64>()
                - d_count as f64 * digamma(alpha_sum);
            if den <= 0.0 {
                return;
            }
            for t in 0..self.k {
                let a = self.alpha[t];
                let num: f64 = (0..d_count)
                    .map(|d| digamma(self.counts.n_dk(d, t) as f64 + a))
                    .sum::<f64>()
                    - d_count as f64 * digamma(a);
                // Clamp to keep the Dirichlet proper even on degenerate counts.
                self.alpha[t] = (a * num / den).clamp(1e-6, 1e4);
            }
        }
    }

    /// Fixed-point iteration for the symmetric topic-word Dirichlet β.
    pub fn optimize_beta(&mut self, rounds: usize) {
        let kv = (self.k * self.v) as f64;
        if kv == 0.0 {
            return;
        }
        for _ in 0..rounds {
            let b = self.beta;
            let num: f64 = self
                .counts
                .n_wk_table()
                .iter()
                .map(|&c| digamma(c as f64 + b))
                .sum::<f64>()
                - kv * digamma(b);
            let den: f64 = self
                .counts
                .n_k_table()
                .iter()
                .map(|&c| digamma(c as f64 + self.v as f64 * b))
                .sum::<f64>()
                - self.k as f64 * digamma(self.v as f64 * b);
            if den <= 0.0 {
                return;
            }
            self.beta = (b * num / (self.v as f64 * den)).clamp(1e-6, 1e3);
        }
    }

    /// Internal consistency check of all count tables (tests).
    pub fn check_counts(&self) -> Result<(), String> {
        let mut rebuilt = TopicCounts::new(self.docs.n_docs(), self.v, self.k);
        for (d, doc) in self.docs.docs.iter().enumerate() {
            for (g, (s, e)) in doc.group_ranges().enumerate() {
                rebuilt.add_group(d, &doc.tokens[s..e], self.z[d][g]);
            }
        }
        if rebuilt != self.counts {
            return Err("count tables out of sync with assignments".into());
        }
        self.counts
            .validate_nz()
            .map_err(|e| format!("sparse nonzero index out of sync: {e}"))?;
        Ok(())
    }
}

/// Sequential-sweep alias rebuild cadence: refresh once the dirty walk
/// would cost a meaningful fraction of a dense O(K) scan. The threshold
/// floor keeps tiny-K models from rebuilding every document.
#[inline]
fn smoothing_rebuild_due(n_dirty: usize, k: usize) -> bool {
    n_dirty > (k / 8).max(16)
}

/// Fold one resolved singleton draw into the telemetry split.
#[inline]
fn tally_draw(draws: &mut DrawSplit, bucket: SingletonBucket) {
    match bucket {
        SingletonBucket::TopicWord => draws.topic_word += 1,
        SingletonBucket::Doc => draws.doc += 1,
        SingletonBucket::Smoothing => draws.smoothing += 1,
    }
}

/// One shard's contribution to the barrier merge: sparse `(row-major
/// index, delta)` pairs over `N_wk`, a dense `Δ N_k`, and the shard's
/// singleton-draw telemetry (merged into [`SweepTelemetry`] at the
/// barrier, so workers never touch shared counters).
struct ShardDelta {
    wk: Vec<(u32, i32)>,
    k: Vec<i64>,
    draws: DrawSplit,
}

/// Everything one worker needs to sweep its contiguous document shard.
struct ShardCtx<'a> {
    docs: &'a [GroupedDoc],
    z: &'a mut [Vec<u16>],
    /// The shard's `N_dk` rows (documents are partitioned, so these are
    /// exclusively owned and updated live, exactly as in the sequential
    /// sweep).
    ndk: &'a mut [u32],
    /// The shard's per-document nonzero-topic rows (flat, capacity K per
    /// doc), owned like `ndk` and kept in sync with it (whichever kernel
    /// runs, so the index never goes stale).
    nz_dk: &'a mut [u16],
    /// Live lengths of the shard's `nz_dk` rows.
    nz_dk_len: &'a mut [u16],
    snap_wk: &'a [u32],
    snap_k: &'a [u64],
    /// Per-word nonzero rows of the snapshot (flat, capacity K per word;
    /// live tables are untouched during a sweep, so these describe
    /// `snap_wk` exactly).
    nz_wk: &'a [u16],
    /// Live lengths of the `nz_wk` rows.
    nz_wk_len: &'a [u16],
    alpha: &'a [f64],
    k: usize,
    beta: f64,
    v_beta: f64,
    seed: u64,
    sweep: u64,
    first_doc: usize,
    /// Whether to run the bucketed sparse singleton kernel.
    sparse: bool,
}

/// Sweep one shard against the snapshot and return its signed
/// `(Δ N_wk, Δ N_k)` for the barrier merge — `Δ N_wk` as a sparse
/// `(index, delta)` list, so merge cost tracks how much actually changed
/// rather than `V × K`.
///
/// Each document is gathered onto a dense local word table (the same
/// scatter-gather shape `topmine_serve::infer` uses), so the hot loop
/// reads `snapshot + own-document delta` without ever touching shared
/// state — the result depends only on `(snapshot, doc, its RNG stream)`,
/// never on shard layout. All buffers live in the caller-owned
/// [`SweepScratch`] and persist across documents and sweeps, so the
/// steady-state shard sweep allocates nothing but its returned delta.
fn sweep_shard(ctx: ShardCtx<'_>, scratch: &mut SweepScratch) -> ShardDelta {
    let ShardCtx {
        docs,
        z,
        ndk,
        nz_dk,
        nz_dk_len,
        snap_wk,
        snap_k,
        nz_wk,
        nz_wk_len,
        alpha,
        k,
        beta,
        v_beta,
        seed,
        sweep,
        first_doc,
        sparse,
    } = ctx;
    let v = snap_wk.len() / k;
    let mut delta_wk: Vec<(u32, i32)> = Vec::new();
    let mut delta_k = vec![0i64; k];
    let mut draws = DrawSplit::default();
    scratch.prepare(k);
    if sparse {
        // One alias rebuild per shard per sweep, against the frozen
        // snapshot `N_k`. Every document restarts its local `N_k` from the
        // snapshot, so the per-document dirty set resets at doc
        // boundaries — the table never goes stale within a sweep, and the
        // draw is a function of (snapshot, doc, stream) exactly like the
        // dense path, independent of shard layout.
        scratch.smoothing.rebuild(alpha, beta, v_beta, snap_k);
    }

    for (i, doc) in docs.iter().enumerate() {
        if doc.group_ends.is_empty() {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(doc_stream_seed(seed, sweep, (first_doc + i) as u64));
        // Gather: dense doc-local word ids plus their snapshot rows. The
        // word → doc-local id map is a stamped table (O(1), no hashing);
        // the stamp records which epoch (document) last claimed the slot.
        let epoch = scratch.next_epoch(v);
        scratch.distinct.clear();
        scratch.local_tokens.clear();
        for &w in &doc.tokens {
            let wi = w as usize;
            if scratch.stamp[wi] != epoch {
                scratch.stamp[wi] = epoch;
                scratch.local_id[wi] = scratch.distinct.len() as u32;
                scratch.distinct.push(w);
            }
            scratch.local_tokens.push(scratch.local_id[wi]);
        }
        // Gathered rows stay unsigned: a document only ever removes counts
        // its own previous-sweep assignments put into the snapshot.
        scratch.local_wk.clear();
        for &w in &scratch.distinct {
            let base = w as usize * k;
            scratch.local_wk.extend_from_slice(&snap_wk[base..base + k]);
        }
        if sparse {
            // Gather the snapshot's nonzero lists alongside the rows; the
            // doc's own moves below keep them in sync with `local_wk`.
            if scratch.local_nz.len() < scratch.distinct.len() {
                scratch
                    .local_nz
                    .resize_with(scratch.distinct.len(), Vec::new);
            }
            for (li, &w) in scratch.distinct.iter().enumerate() {
                let base = w as usize * k;
                scratch.local_nz[li].clear();
                scratch.local_nz[li]
                    .extend_from_slice(&nz_wk[base..base + nz_wk_len[w as usize] as usize]);
            }
        }
        scratch.local_nk.copy_from_slice(snap_k);
        let ndk_row = &mut ndk[i * k..(i + 1) * k];
        let nz_row = &mut nz_dk[i * k..(i + 1) * k];
        let nz_len = &mut nz_dk_len[i];
        let zs = &mut z[i];
        if sparse {
            // `local_nk` just reset to the snapshot the alias table was
            // built over: the dirty set starts empty for every document.
            scratch.smoothing.clear_dirty();
            scratch.doc_bucket.begin_doc(
                &nz_row[..*nz_len as usize],
                ndk_row,
                &scratch.local_nk,
                beta,
                v_beta,
                k,
            );
        }

        let mut start = 0usize;
        for (g, &end) in doc.group_ends.iter().enumerate() {
            let end = end as usize;
            let toks = &scratch.local_tokens[start..end];
            let s = (end - start) as u32;
            let old = zs[g] as usize;
            for &lw in toks {
                let cell = &mut scratch.local_wk[lw as usize * k + old];
                *cell -= 1;
                if sparse && *cell == 0 {
                    nz_remove(&mut scratch.local_nz[lw as usize], old as u16);
                }
            }
            scratch.local_nk[old] -= s as u64;
            ndk_row[old] -= s;
            if ndk_row[old] == 0 {
                nz_row_remove(nz_row, nz_len, old as u16);
            }
            if sparse {
                let inv_den = 1.0 / (v_beta + scratch.local_nk[old] as f64);
                scratch
                    .doc_bucket
                    .update_topic(old, ndk_row[old], beta, inv_den);
                scratch.smoothing.mark_dirty(old, alpha[old], beta, inv_den);
            }

            let new = if sparse && toks.len() == 1 {
                let lw = toks[0] as usize;
                let (t, bucket) = sample_singleton_sparse_split(
                    &mut rng,
                    alpha,
                    v_beta,
                    &scratch.local_wk[lw * k..(lw + 1) * k],
                    &scratch.local_nz[lw],
                    ndk_row,
                    &nz_row[..*nz_len as usize],
                    &scratch.local_nk,
                    &scratch.doc_bucket,
                    &scratch.smoothing,
                    &mut scratch.q_buf,
                );
                tally_draw(&mut draws, bucket);
                t
            } else {
                // The same TrainView the sequential sweep uses, pointed at
                // the doc-local gathered table instead of the global one.
                let view = TrainView::new(&scratch.local_wk, &scratch.local_nk, k, beta, v_beta);
                clique_posterior(
                    &view,
                    alpha,
                    ndk_row,
                    toks,
                    &mut scratch.clique,
                    &mut scratch.weights,
                );
                draws.dense += 1;
                sample_discrete(&mut rng, &scratch.weights)
            };

            zs[g] = new as u16;
            for &lw in toks {
                let cell = &mut scratch.local_wk[lw as usize * k + new];
                if sparse && *cell == 0 {
                    nz_insert(&mut scratch.local_nz[lw as usize], new as u16);
                }
                *cell += 1;
            }
            scratch.local_nk[new] += s as u64;
            if ndk_row[new] == 0 {
                nz_row_insert(nz_row, nz_len, new as u16);
            }
            ndk_row[new] += s;
            if sparse {
                let inv_den = 1.0 / (v_beta + scratch.local_nk[new] as f64);
                scratch
                    .doc_bucket
                    .update_topic(new, ndk_row[new], beta, inv_den);
                scratch.smoothing.mark_dirty(new, alpha[new], beta, inv_den);
            }
            start = end;
        }

        // Fold the document's delta into the shard delta.
        for (li, &w) in scratch.distinct.iter().enumerate() {
            let base = w as usize * k;
            for t in 0..k {
                let dv = scratch.local_wk[li * k + t] as i64 - snap_wk[base + t] as i64;
                if dv != 0 {
                    delta_wk.push(((base + t) as u32, dv as i32));
                }
            }
        }
        for (t, d) in delta_k.iter_mut().enumerate() {
            *d += scratch.local_nk[t] as i64 - snap_k[t] as i64;
        }
    }
    ShardDelta {
        wk: delta_wk,
        k: delta_k,
        draws,
    }
}

/// Fold-in unit for [`PhraseLda::heldout_perplexity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldIn {
    /// One topic per observed group — PhraseLDA's clique assumption.
    Groups,
    /// One topic per observed token — plain LDA.
    Tokens,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GroupedDoc;

    /// Two perfectly separable "topics": words 0-2 in even docs, 3-5 in odd.
    fn separable_docs(group_len: usize) -> GroupedDocs {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 3 };
            let tokens: Vec<u32> = (0..24).map(|i| base + (i % 3) as u32).collect();
            let group_ends = (1..=tokens.len() as u32 / group_len as u32)
                .map(|g| g * group_len as u32)
                .collect();
            docs.push(GroupedDoc { tokens, group_ends });
        }
        GroupedDocs {
            docs,
            vocab_size: 6,
        }
    }

    #[test]
    fn counts_stay_consistent_through_sweeps() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(3).with_seed(7));
        m.check_counts().unwrap();
        m.run(5);
        m.check_counts().unwrap();
        assert_eq!(m.sweeps_done(), 5);
    }

    #[test]
    fn counts_stay_consistent_through_parallel_sweeps() {
        let mut m = PhraseLda::new(
            separable_docs(2),
            TopicModelConfig::new(3).with_seed(7).with_threads(3),
        );
        m.run(5);
        m.check_counts().unwrap();
        assert_eq!(m.sweeps_done(), 5);
    }

    #[test]
    fn recovers_separable_topics() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 42,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        m.run(60);
        // Words 0-2 should concentrate in one topic, 3-5 in the other.
        let phi = m.phi();
        let topic_of = |w: usize| if phi[0][w] > phi[1][w] { 0 } else { 1 };
        let t0 = topic_of(0);
        assert_eq!(topic_of(1), t0);
        assert_eq!(topic_of(2), t0);
        assert_eq!(topic_of(3), 1 - t0);
        assert_eq!(topic_of(4), 1 - t0);
        assert_eq!(topic_of(5), 1 - t0);
        // And φ should be lopsided, not uniform.
        assert!(phi[t0][0] > 0.2);
        assert!(phi[t0][3] < 0.05);
    }

    #[test]
    fn parallel_chain_recovers_separable_topics_too() {
        // The snapshot-sweep approximation must still mix to the planted
        // structure (Newman et al. report indistinguishable quality).
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 42,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 4,
                ..TopicModelConfig::default()
            },
        );
        m.run(60);
        let phi = m.phi();
        let topic_of = |w: usize| if phi[0][w] > phi[1][w] { 0 } else { 1 };
        let t0 = topic_of(0);
        assert_eq!(topic_of(1), t0);
        assert_eq!(topic_of(2), t0);
        assert_eq!(topic_of(3), 1 - t0);
        assert!(phi[t0][0] > 0.2);
        assert!(phi[t0][3] < 0.05);
    }

    #[test]
    fn groups_share_one_topic() {
        let mut m = PhraseLda::new(separable_docs(4), TopicModelConfig::new(4).with_seed(3));
        m.run(3);
        // The invariant is structural: z is stored per group, and counts
        // move s tokens at a time; check_counts verifies the bookkeeping.
        m.check_counts().unwrap();
        // All four tokens of any group contribute to the same topic's n_wk.
        let phi = m.phi();
        assert_eq!(phi.len(), 4);
    }

    #[test]
    fn phi_and_theta_are_distributions() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(3).with_seed(11));
        m.run(5);
        for row in m.phi() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi row sums to {s}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
        for row in m.theta() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "theta row sums to {s}");
        }
    }

    #[test]
    fn perplexity_decreases_with_training() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 5,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        let before = m.perplexity();
        m.run(50);
        let after = m.perplexity();
        assert!(
            after < before,
            "perplexity should fall: {before} -> {after}"
        );
        // Perfectly separable vocab of 6 with 2 topics of 3 words each:
        // ideal per-token perplexity approaches 3.
        assert!(after < 4.5, "after = {after}");
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let cfg = TopicModelConfig::new(3).with_seed(99);
        let mut a = PhraseLda::new(separable_docs(2), cfg.clone());
        let mut b = PhraseLda::new(separable_docs(2), cfg);
        a.run(10);
        b.run(10);
        assert_eq!(a.z, b.z);
        assert_eq!(a.perplexity(), b.perplexity());
    }

    #[test]
    fn thread_count_does_not_change_the_parallel_chain() {
        // The core contract: T = 2 and T = 5 produce the same chain on the
        // same seed (the heavier sweep across {2,3,7} with φ/θ equality is
        // property-tested in tests/parallel_determinism.rs).
        let mut a = PhraseLda::new(
            separable_docs(2),
            TopicModelConfig::new(3).with_seed(99).with_threads(2),
        );
        let mut b = PhraseLda::new(
            separable_docs(2),
            TopicModelConfig::new(3).with_seed(99).with_threads(5),
        );
        a.run(10);
        b.run(10);
        assert_eq!(a.z, b.z);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.perplexity(), b.perplexity());
    }

    #[test]
    fn hyperparameter_optimization_moves_and_stays_positive() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 2.0,
                beta: 0.5,
                seed: 8,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        m.run(30);
        let alpha_before = m.alpha().to_vec();
        let beta_before = m.beta();
        m.optimize_hyperparameters();
        assert!(m.alpha().iter().all(|&a| a > 0.0));
        assert!(m.beta() > 0.0);
        // Sharply concentrated corpus: both should shrink.
        assert!(m.alpha().iter().sum::<f64>() < alpha_before.iter().sum::<f64>());
        assert!(m.beta() < beta_before);
        m.check_counts().unwrap();
    }

    #[test]
    fn heldout_perplexity_is_finite_and_better_than_uniform() {
        let all = separable_docs(1);
        let (train, held) = all.split_heldout(4);
        let mut m = PhraseLda::new(
            train,
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 21,
                optimize_every: 0,
                burn_in: 0,
                n_threads: 1,
                ..TopicModelConfig::default()
            },
        );
        m.run(60);
        let pp = m.heldout_perplexity(&held, 20, 1, FoldIn::Tokens);
        assert!(pp.is_finite());
        // Uniform over V=6 would give 6.
        assert!(pp < 6.0, "held-out perplexity {pp}");
    }

    #[test]
    fn run_with_reports_every_sweep() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(2).with_seed(1));
        let mut seen = Vec::new();
        m.run_with(4, |i, model| {
            seen.push((i, model.sweeps_done()));
        });
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn empty_docs_are_tolerated() {
        let docs = GroupedDocs {
            docs: vec![
                GroupedDoc::default(),
                GroupedDoc {
                    tokens: vec![0, 1],
                    group_ends: vec![2],
                },
            ],
            vocab_size: 2,
        };
        let mut m = PhraseLda::new(docs.clone(), TopicModelConfig::new(2).with_seed(2));
        m.run(3);
        m.check_counts().unwrap();
        assert!(m.perplexity().is_finite());
        // Same corpus through the sharded path (more shards than non-empty
        // docs, empty doc in its own shard).
        let mut p = PhraseLda::new(docs, TopicModelConfig::new(2).with_seed(2).with_threads(4));
        p.run(3);
        p.check_counts().unwrap();
        assert!(p.perplexity().is_finite());
    }
}
