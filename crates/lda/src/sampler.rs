//! Collapsed Gibbs sampling for PhraseLDA (paper §5.3, Eq. 7).
//!
//! The sampler operates on *groups* (cliques). For a clique `C_{d,g}` of
//! size `s` the posterior over its single topic value `k` is
//!
//! ```text
//! p(C = k | W, Z¬C) ∝ ∏_{j=1..s} (α_k + N_dk¬C + j − 1)
//!                     · (β_{w_j} + N_{w_j,k}¬C + m_j) / (Σβ + N_k¬C + j − 1)
//! ```
//!
//! where `m_j` counts previous occurrences of word `w_j` *within the clique*
//! (the exact Gamma-ratio form from the paper's appendix; Eq. 7 prints the
//! common case of distinct words). With `s = 1` this reduces to the
//! standard LDA update, so plain LDA is run through the identical code path
//! with singleton groups — mirroring the paper's measurement setup ("the
//! same JAVA implementation of PhraseLDA is used (as LDA is a special case
//! of PhraseLDA)").

use crate::model::GroupedDocs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topmine_util::stats::digamma;

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct TopicModelConfig {
    /// Number of topics K.
    pub n_topics: usize,
    /// Initial symmetric document-topic hyperparameter (each α_k starts at
    /// this; optimization may make the vector asymmetric).
    pub alpha: f64,
    /// Symmetric topic-word hyperparameter β.
    pub beta: f64,
    /// RNG seed for initialization and sweeps.
    pub seed: u64,
    /// Optimize α (asymmetric) and β every this many sweeps via Minka's
    /// fixed point; `0` disables (the paper disables it for timed runs).
    pub optimize_every: usize,
    /// Sweeps to run before the first hyperparameter update.
    pub burn_in: usize,
}

impl Default for TopicModelConfig {
    fn default() -> Self {
        Self {
            n_topics: 10,
            alpha: 50.0 / 10.0,
            beta: 0.01,
            seed: 1,
            optimize_every: 0,
            burn_in: 50,
        }
    }
}

impl TopicModelConfig {
    pub fn new(n_topics: usize) -> Self {
        Self {
            n_topics,
            // The conventional LDA default α = 50/K used by MALLET.
            alpha: 50.0 / n_topics as f64,
            ..Self::default()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_hyper_opt(mut self, every: usize, burn_in: usize) -> Self {
        self.optimize_every = every;
        self.burn_in = burn_in;
        self
    }
}

/// The PhraseLDA (and LDA) collapsed Gibbs sampler.
#[derive(Debug, Clone)]
pub struct PhraseLda {
    docs: GroupedDocs,
    k: usize,
    v: usize,
    /// Document-topic Dirichlet (asymmetric after optimization).
    alpha: Vec<f64>,
    /// Symmetric topic-word Dirichlet.
    beta: f64,
    /// N_{d,k}: tokens of doc d assigned to topic k (row-major d*K + k).
    n_dk: Vec<u32>,
    /// N_{x,k}: tokens of word x assigned to topic k (row-major x*K + k).
    n_wk: Vec<u32>,
    /// N_k: tokens assigned to topic k.
    n_k: Vec<u64>,
    /// Topic of each group: z[d][g].
    z: Vec<Vec<u16>>,
    rng: StdRng,
    sweeps_done: usize,
    config: TopicModelConfig,
}

impl PhraseLda {
    /// Initialize with uniformly random topic assignments per group.
    pub fn new(docs: GroupedDocs, config: TopicModelConfig) -> Self {
        let k = config.n_topics;
        assert!(k >= 1 && k <= u16::MAX as usize, "bad topic count");
        assert!(
            config.alpha > 0.0 && config.beta > 0.0,
            "hyperparameters must be positive"
        );
        debug_assert!(docs.validate().is_ok());
        let v = docs.vocab_size;
        let d = docs.n_docs();
        let mut model = Self {
            k,
            v,
            alpha: vec![config.alpha; k],
            beta: config.beta,
            n_dk: vec![0; d * k],
            n_wk: vec![0; v * k],
            n_k: vec![0; k],
            z: Vec::with_capacity(d),
            rng: StdRng::seed_from_u64(config.seed),
            sweeps_done: 0,
            config,
            docs,
        };
        for d in 0..model.docs.n_docs() {
            let n_groups = model.docs.docs[d].n_groups();
            let mut zs = Vec::with_capacity(n_groups);
            for g in 0..n_groups {
                let topic = model.rng.gen_range(0..model.k) as u16;
                zs.push(topic);
                model.add_group(d, g, topic);
            }
            model.z.push(zs);
        }
        model
    }

    /// Plain LDA over a corpus: singleton groups.
    pub fn lda(corpus: &topmine_corpus::Corpus, config: TopicModelConfig) -> Self {
        Self::new(GroupedDocs::unigrams(corpus), config)
    }

    #[inline]
    fn group_range(&self, d: usize, g: usize) -> (usize, usize) {
        let doc = &self.docs.docs[d];
        let start = if g == 0 {
            0
        } else {
            doc.group_ends[g - 1] as usize
        };
        (start, doc.group_ends[g] as usize)
    }

    #[inline]
    fn add_group(&mut self, d: usize, g: usize, topic: u16) {
        let kt = topic as usize;
        let (start, end) = self.group_range(d, g);
        for i in start..end {
            let w = self.docs.docs[d].tokens[i] as usize;
            self.n_wk[w * self.k + kt] += 1;
        }
        let s = (end - start) as u32;
        self.n_dk[d * self.k + kt] += s;
        self.n_k[kt] += s as u64;
    }

    #[inline]
    fn remove_group(&mut self, d: usize, g: usize, topic: u16) {
        let kt = topic as usize;
        let (start, end) = self.group_range(d, g);
        for i in start..end {
            let w = self.docs.docs[d].tokens[i] as usize;
            self.n_wk[w * self.k + kt] -= 1;
        }
        let s = (end - start) as u32;
        self.n_dk[d * self.k + kt] -= s;
        self.n_k[kt] -= s as u64;
    }

    /// One full Gibbs sweep over every group (Eq. 7 update per clique).
    pub fn step(&mut self) {
        let k = self.k;
        let v_beta = self.v as f64 * self.beta;
        let mut weights = vec![0.0f64; k];
        // Scratch for within-clique word multiplicities.
        let mut seen: Vec<(u32, u32)> = Vec::with_capacity(8);

        for d in 0..self.docs.n_docs() {
            let n_groups = self.z[d].len();
            for g in 0..n_groups {
                let old = self.z[d][g];
                self.remove_group(d, g, old);

                let (start, end) = self.group_range(d, g);
                let s_len = end - start;

                // Compute the K unnormalized posteriors.
                for (t, weight_slot) in weights.iter_mut().enumerate() {
                    let mut w_t = 1.0f64;
                    let n_dk = self.n_dk[d * k + t] as f64;
                    let n_k = self.n_k[t] as f64;
                    let alpha_t = self.alpha[t];
                    seen.clear();
                    for (j, i) in (start..end).enumerate() {
                        let w = self.docs.docs[d].tokens[i];
                        // m = prior occurrences of w inside this clique.
                        let m = match seen.iter_mut().find(|(sw, _)| *sw == w) {
                            Some((_, c)) => {
                                let m = *c;
                                *c += 1;
                                m
                            }
                            None => {
                                seen.push((w, 1));
                                0
                            }
                        };
                        let num_doc = alpha_t + n_dk + j as f64;
                        let num_word = self.beta + self.n_wk[w as usize * k + t] as f64 + m as f64;
                        let den = v_beta + n_k + j as f64;
                        w_t *= num_doc * num_word / den;
                    }
                    *weight_slot = w_t;
                }
                debug_assert!(
                    weights.iter().all(|w| w.is_finite()),
                    "non-finite sampling weight (group len {s_len})"
                );

                let new = sample_discrete(&mut self.rng, &weights) as u16;
                self.z[d][g] = new;
                self.add_group(d, g, new);
            }
        }
        self.sweeps_done += 1;
        if self.config.optimize_every > 0
            && self.sweeps_done >= self.config.burn_in
            && self.sweeps_done.is_multiple_of(self.config.optimize_every)
        {
            self.optimize_hyperparameters();
        }
    }

    /// Run `iters` sweeps.
    pub fn run(&mut self, iters: usize) {
        for _ in 0..iters {
            self.step();
        }
    }

    /// Run `iters` sweeps, invoking `callback(sweep_index, &self)` after
    /// each (used by the perplexity-vs-iteration experiments, Figures 6/7).
    pub fn run_with<F: FnMut(usize, &Self)>(&mut self, iters: usize, mut callback: F) {
        for _ in 0..iters {
            self.step();
            callback(self.sweeps_done, self);
        }
    }

    // ----- accessors -------------------------------------------------------

    pub fn n_topics(&self) -> usize {
        self.k
    }

    pub fn vocab_size(&self) -> usize {
        self.v
    }

    pub fn docs(&self) -> &GroupedDocs {
        &self.docs
    }

    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Topic currently assigned to group `g` of document `d`.
    pub fn topic_of_group(&self, d: usize, g: usize) -> u16 {
        self.z[d][g]
    }

    /// Point estimate of the topic-word distribution φ (K × V).
    pub fn phi(&self) -> Vec<Vec<f64>> {
        let v_beta = self.v as f64 * self.beta;
        (0..self.k)
            .map(|t| {
                let den = self.n_k[t] as f64 + v_beta;
                (0..self.v)
                    .map(|w| (self.n_wk[w * self.k + t] as f64 + self.beta) / den)
                    .collect()
            })
            .collect()
    }

    /// Point estimate of the document-topic distribution θ (D × K).
    pub fn theta(&self) -> Vec<Vec<f64>> {
        let alpha_sum: f64 = self.alpha.iter().sum();
        (0..self.docs.n_docs())
            .map(|d| {
                let n_d = self.docs.docs[d].n_tokens() as f64;
                let den = n_d + alpha_sum;
                (0..self.k)
                    .map(|t| (self.n_dk[d * self.k + t] as f64 + self.alpha[t]) / den)
                    .collect()
            })
            .collect()
    }

    /// Number of *effective* topics: topics holding at least `min_share` of
    /// all assigned tokens. A cheap data-driven estimate of how many of the
    /// K requested topics the corpus actually uses — a pragmatic stand-in
    /// for the nonparametric prior the paper's §8 proposes as future work
    /// (run with generous K, read off the occupied topics).
    pub fn effective_topics(&self, min_share: f64) -> usize {
        let total: u64 = self.n_k.iter().sum();
        if total == 0 {
            return 0;
        }
        self.n_k
            .iter()
            .filter(|&&c| c as f64 / total as f64 >= min_share)
            .count()
    }

    /// Count of word `w` in topic `t`.
    pub fn word_topic_count(&self, w: u32, t: usize) -> u32 {
        self.n_wk[w as usize * self.k + t]
    }

    pub fn topic_count(&self, t: usize) -> u64 {
        self.n_k[t]
    }

    // ----- perplexity ------------------------------------------------------

    /// Training-corpus perplexity from the current counts:
    /// `exp(−Σ log p(w|d) / N)` with `p(w|d) = Σ_k θ̂_dk φ̂_kw`.
    ///
    /// Tokens are scored individually for both LDA and PhraseLDA, so the
    /// two models' curves are directly comparable (Figures 6 and 7).
    pub fn perplexity(&self) -> f64 {
        let mut log_lik = 0.0f64;
        let mut n = 0u64;
        let alpha_sum: f64 = self.alpha.iter().sum();
        let v_beta = self.v as f64 * self.beta;
        // Precompute φ column denominators.
        let phi_den: Vec<f64> = (0..self.k).map(|t| self.n_k[t] as f64 + v_beta).collect();
        for d in 0..self.docs.n_docs() {
            let doc = &self.docs.docs[d];
            if doc.tokens.is_empty() {
                continue;
            }
            let theta_den = doc.n_tokens() as f64 + alpha_sum;
            let theta: Vec<f64> = (0..self.k)
                .map(|t| (self.n_dk[d * self.k + t] as f64 + self.alpha[t]) / theta_den)
                .collect();
            for &w in &doc.tokens {
                let mut p = 0.0;
                for t in 0..self.k {
                    p += theta[t] * (self.n_wk[w as usize * self.k + t] as f64 + self.beta)
                        / phi_den[t];
                }
                log_lik += p.ln();
                n += 1;
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        (-log_lik / n as f64).exp()
    }

    /// Held-out perplexity by document completion.
    ///
    /// For each held-out document, the even-indexed *groups* are observed
    /// and the odd-indexed groups are scored — so two models sharing one
    /// grouping score exactly the same unseen tokens. Fold-in estimates θ
    /// with a short Gibbs chain over the observed half with φ frozen at the
    /// training counts. `fold_in` selects the fold-in unit:
    ///
    /// * [`FoldIn::Groups`] — one topic per observed group (PhraseLDA's own
    ///   inference assumption, Eq. 7 with frozen φ);
    /// * [`FoldIn::Tokens`] — one topic per observed token (plain LDA).
    ///
    /// Comparing PhraseLDA(`Groups`) against LDA(`Tokens`) over the same
    /// grouping evaluates each model under its own assumption on identical
    /// unseen tokens — the paper's Figures 6 and 7 comparison.
    pub fn heldout_perplexity(
        &self,
        heldout: &GroupedDocs,
        fold_iters: usize,
        seed: u64,
        fold_in: FoldIn,
    ) -> f64 {
        assert_eq!(heldout.vocab_size, self.v, "vocabulary mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let v_beta = self.v as f64 * self.beta;
        let phi_den: Vec<f64> = (0..self.k).map(|t| self.n_k[t] as f64 + v_beta).collect();
        let alpha_sum: f64 = self.alpha.iter().sum();

        let mut log_lik = 0.0f64;
        let mut n = 0u64;
        let mut weights = vec![0.0f64; self.k];

        for doc in &heldout.docs {
            if doc.n_groups() < 2 {
                continue;
            }
            // Observed half: even groups, as fold-in units.
            let observed: Vec<(usize, usize)> = match fold_in {
                FoldIn::Groups => doc
                    .group_ranges()
                    .enumerate()
                    .filter(|(g, _)| g % 2 == 0)
                    .map(|(_, r)| r)
                    .collect(),
                FoldIn::Tokens => doc
                    .group_ranges()
                    .enumerate()
                    .filter(|(g, _)| g % 2 == 0)
                    .flat_map(|(_, (s, e))| (s..e).map(|i| (i, i + 1)))
                    .collect(),
            };
            let mut local_ndk = vec![0u32; self.k];
            let mut local_z: Vec<u16> = Vec::with_capacity(observed.len());
            let mut n_obs = 0u32;
            for &(s, e) in &observed {
                let t = rng.gen_range(0..self.k) as u16;
                local_ndk[t as usize] += (e - s) as u32;
                n_obs += (e - s) as u32;
                local_z.push(t);
            }
            for _ in 0..fold_iters {
                for (gi, &(s, e)) in observed.iter().enumerate() {
                    let old = local_z[gi] as usize;
                    local_ndk[old] -= (e - s) as u32;
                    for t in 0..self.k {
                        let mut w_t = 1.0f64;
                        for (j, i) in (s..e).enumerate() {
                            let w = doc.tokens[i] as usize;
                            w_t *= (self.alpha[t] + local_ndk[t] as f64 + j as f64)
                                * (self.n_wk[w * self.k + t] as f64 + self.beta)
                                / phi_den[t];
                        }
                        weights[t] = w_t;
                    }
                    let new = sample_discrete(&mut rng, &weights);
                    local_z[gi] = new as u16;
                    local_ndk[new] += (e - s) as u32;
                }
            }
            let theta_den = n_obs as f64 + alpha_sum;
            let theta: Vec<f64> = (0..self.k)
                .map(|t| (local_ndk[t] as f64 + self.alpha[t]) / theta_den)
                .collect();
            // Score the unseen half: odd groups.
            for (g, (s, e)) in doc.group_ranges().enumerate() {
                if g % 2 == 0 {
                    continue;
                }
                for i in s..e {
                    let w = doc.tokens[i] as usize;
                    let mut p = 0.0;
                    for t in 0..self.k {
                        p += theta[t] * (self.n_wk[w * self.k + t] as f64 + self.beta) / phi_den[t];
                    }
                    log_lik += p.ln();
                    n += 1;
                }
            }
        }
        if n == 0 {
            return f64::NAN;
        }
        (-log_lik / n as f64).exp()
    }

    // ----- hyperparameter optimization (paper §5.3, Minka 2000) ------------

    /// One round of Minka's fixed-point updates: asymmetric α, symmetric β.
    pub fn optimize_hyperparameters(&mut self) {
        self.optimize_alpha(3);
        self.optimize_beta(3);
    }

    /// Fixed-point iteration for the document-topic Dirichlet:
    /// `α_k ← α_k · (Σ_d ψ(N_dk + α_k) − D ψ(α_k)) / (Σ_d ψ(N_d + Σα) − D ψ(Σα))`.
    pub fn optimize_alpha(&mut self, rounds: usize) {
        let d_count = self.docs.n_docs();
        if d_count == 0 {
            return;
        }
        let doc_lens: Vec<f64> = self.docs.docs.iter().map(|d| d.n_tokens() as f64).collect();
        for _ in 0..rounds {
            let alpha_sum: f64 = self.alpha.iter().sum();
            let den: f64 = doc_lens
                .iter()
                .map(|&n| digamma(n + alpha_sum))
                .sum::<f64>()
                - d_count as f64 * digamma(alpha_sum);
            if den <= 0.0 {
                return;
            }
            for t in 0..self.k {
                let a = self.alpha[t];
                let num: f64 = (0..d_count)
                    .map(|d| digamma(self.n_dk[d * self.k + t] as f64 + a))
                    .sum::<f64>()
                    - d_count as f64 * digamma(a);
                // Clamp to keep the Dirichlet proper even on degenerate counts.
                self.alpha[t] = (a * num / den).clamp(1e-6, 1e4);
            }
        }
    }

    /// Fixed-point iteration for the symmetric topic-word Dirichlet β.
    pub fn optimize_beta(&mut self, rounds: usize) {
        let kv = (self.k * self.v) as f64;
        if kv == 0.0 {
            return;
        }
        for _ in 0..rounds {
            let b = self.beta;
            let num: f64 = self
                .n_wk
                .iter()
                .map(|&c| digamma(c as f64 + b))
                .sum::<f64>()
                - kv * digamma(b);
            let den: f64 = self
                .n_k
                .iter()
                .map(|&c| digamma(c as f64 + self.v as f64 * b))
                .sum::<f64>()
                - self.k as f64 * digamma(self.v as f64 * b);
            if den <= 0.0 {
                return;
            }
            self.beta = (b * num / (self.v as f64 * den)).clamp(1e-6, 1e3);
        }
    }

    /// Internal consistency check of all count tables (tests).
    pub fn check_counts(&self) -> Result<(), String> {
        let mut n_dk = vec![0u32; self.docs.n_docs() * self.k];
        let mut n_wk = vec![0u32; self.v * self.k];
        let mut n_k = vec![0u64; self.k];
        for (d, doc) in self.docs.docs.iter().enumerate() {
            for (g, (s, e)) in doc.group_ranges().enumerate() {
                let t = self.z[d][g] as usize;
                for i in s..e {
                    n_wk[doc.tokens[i] as usize * self.k + t] += 1;
                }
                n_dk[d * self.k + t] += (e - s) as u32;
                n_k[t] += (e - s) as u64;
            }
        }
        if n_dk != self.n_dk {
            return Err("n_dk out of sync".into());
        }
        if n_wk != self.n_wk {
            return Err("n_wk out of sync".into());
        }
        if n_k != self.n_k {
            return Err("n_k out of sync".into());
        }
        Ok(())
    }
}

/// Fold-in unit for [`PhraseLda::heldout_perplexity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldIn {
    /// One topic per observed group — PhraseLDA's clique assumption.
    Groups,
    /// One topic per observed token — plain LDA.
    Tokens,
}

/// Sample an index proportional to `weights` (unnormalized, non-negative).
#[inline]
fn sample_discrete(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate: all weights zero/over/underflowed — uniform fallback.
        return rng.gen_range(0..weights.len());
    }
    let x = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GroupedDoc;

    /// Two perfectly separable "topics": words 0-2 in even docs, 3-5 in odd.
    fn separable_docs(group_len: usize) -> GroupedDocs {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 3 };
            let tokens: Vec<u32> = (0..24).map(|i| base + (i % 3) as u32).collect();
            let group_ends = (1..=tokens.len() as u32 / group_len as u32)
                .map(|g| g * group_len as u32)
                .collect();
            docs.push(GroupedDoc { tokens, group_ends });
        }
        GroupedDocs {
            docs,
            vocab_size: 6,
        }
    }

    #[test]
    fn counts_stay_consistent_through_sweeps() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(3).with_seed(7));
        m.check_counts().unwrap();
        m.run(5);
        m.check_counts().unwrap();
        assert_eq!(m.sweeps_done(), 5);
    }

    #[test]
    fn recovers_separable_topics() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 42,
                optimize_every: 0,
                burn_in: 0,
            },
        );
        m.run(60);
        // Words 0-2 should concentrate in one topic, 3-5 in the other.
        let phi = m.phi();
        let topic_of = |w: usize| if phi[0][w] > phi[1][w] { 0 } else { 1 };
        let t0 = topic_of(0);
        assert_eq!(topic_of(1), t0);
        assert_eq!(topic_of(2), t0);
        assert_eq!(topic_of(3), 1 - t0);
        assert_eq!(topic_of(4), 1 - t0);
        assert_eq!(topic_of(5), 1 - t0);
        // And φ should be lopsided, not uniform.
        assert!(phi[t0][0] > 0.2);
        assert!(phi[t0][3] < 0.05);
    }

    #[test]
    fn groups_share_one_topic() {
        let mut m = PhraseLda::new(separable_docs(4), TopicModelConfig::new(4).with_seed(3));
        m.run(3);
        // The invariant is structural: z is stored per group, and counts
        // move s tokens at a time; check_counts verifies the bookkeeping.
        m.check_counts().unwrap();
        // All four tokens of any group contribute to the same topic's n_wk.
        let phi = m.phi();
        assert_eq!(phi.len(), 4);
    }

    #[test]
    fn phi_and_theta_are_distributions() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(3).with_seed(11));
        m.run(5);
        for row in m.phi() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi row sums to {s}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
        for row in m.theta() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "theta row sums to {s}");
        }
    }

    #[test]
    fn perplexity_decreases_with_training() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 5,
                optimize_every: 0,
                burn_in: 0,
            },
        );
        let before = m.perplexity();
        m.run(50);
        let after = m.perplexity();
        assert!(
            after < before,
            "perplexity should fall: {before} -> {after}"
        );
        // Perfectly separable vocab of 6 with 2 topics of 3 words each:
        // ideal per-token perplexity approaches 3.
        assert!(after < 4.5, "after = {after}");
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let cfg = TopicModelConfig::new(3).with_seed(99);
        let mut a = PhraseLda::new(separable_docs(2), cfg.clone());
        let mut b = PhraseLda::new(separable_docs(2), cfg);
        a.run(10);
        b.run(10);
        assert_eq!(a.z, b.z);
        assert_eq!(a.perplexity(), b.perplexity());
    }

    #[test]
    fn hyperparameter_optimization_moves_and_stays_positive() {
        let mut m = PhraseLda::new(
            separable_docs(1),
            TopicModelConfig {
                n_topics: 2,
                alpha: 2.0,
                beta: 0.5,
                seed: 8,
                optimize_every: 0,
                burn_in: 0,
            },
        );
        m.run(30);
        let alpha_before = m.alpha().to_vec();
        let beta_before = m.beta();
        m.optimize_hyperparameters();
        assert!(m.alpha().iter().all(|&a| a > 0.0));
        assert!(m.beta() > 0.0);
        // Sharply concentrated corpus: both should shrink.
        assert!(m.alpha().iter().sum::<f64>() < alpha_before.iter().sum::<f64>());
        assert!(m.beta() < beta_before);
        m.check_counts().unwrap();
    }

    #[test]
    fn heldout_perplexity_is_finite_and_better_than_uniform() {
        let all = separable_docs(1);
        let (train, held) = all.split_heldout(4);
        let mut m = PhraseLda::new(
            train,
            TopicModelConfig {
                n_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                seed: 21,
                optimize_every: 0,
                burn_in: 0,
            },
        );
        m.run(60);
        let pp = m.heldout_perplexity(&held, 20, 1, FoldIn::Tokens);
        assert!(pp.is_finite());
        // Uniform over V=6 would give 6.
        assert!(pp < 6.0, "held-out perplexity {pp}");
    }

    #[test]
    fn run_with_reports_every_sweep() {
        let mut m = PhraseLda::new(separable_docs(2), TopicModelConfig::new(2).with_seed(1));
        let mut seen = Vec::new();
        m.run_with(4, |i, model| {
            seen.push((i, model.sweeps_done()));
        });
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn empty_docs_are_tolerated() {
        let docs = GroupedDocs {
            docs: vec![
                GroupedDoc::default(),
                GroupedDoc {
                    tokens: vec![0, 1],
                    group_ends: vec![2],
                },
            ],
            vocab_size: 2,
        };
        let mut m = PhraseLda::new(docs, TopicModelConfig::new(2).with_seed(2));
        m.run(3);
        m.check_counts().unwrap();
        assert!(m.perplexity().is_finite());
    }
}
