//! The shared Eq. 7 clique-posterior kernel.
//!
//! Every Gibbs update in the workspace — training sweeps (sequential and
//! thread-sharded), held-out fold-in, and the serving layer's frozen-φ
//! fold-in (`topmine_serve::infer`) — samples a topic for a *clique* of
//! tokens from the same posterior shape:
//!
//! ```text
//! p(C = k | ·) ∝ ∏_{j=0..s-1} (α_k + N_dk + j) · num_k(w_j, m_j) / den_k(j)
//! ```
//!
//! The document side `(α_k + N_dk + j)` is universal; what varies is where
//! the word side reads from. [`CountsView`] abstracts exactly that seam:
//!
//! * training reads live Gibbs counts — `num = β + N_wk + m`,
//!   `den = Vβ + N_k + j` (the exact Gamma-ratio form with the
//!   within-clique multiplicity `m`);
//! * the parallel sweep reads the same formula through a per-document
//!   *gathered* copy of the sweep snapshot (document-local word ids);
//! * fold-in reads a frozen φ point estimate — `num = φ_{k,w}`, `den = 1`
//!   (φ is fixed, so there is no Gamma-ratio correction).
//!
//! Keeping the loop here means training and serving can never drift: there
//! is exactly one implementation of the posterior and one
//! [`sample_discrete`].
//!
//! # Numerical contract
//!
//! The per-topic weight is a product over clique tokens and underflows for
//! long cliques (a 200-token clique at β = 0.01 is far below `f64::MIN`).
//! The kernel rescales the whole weight vector by a power of two whenever
//! its maximum drifts out of a safe window. Power-of-two scaling is exact
//! in IEEE 754, so the *ratios* between weights — the only thing sampling
//! consumes — are preserved bit-for-bit, and when no rescale triggers the
//! computation is bit-identical to the pre-kernel per-topic loops.
//!
//! # Sparse bucketed singleton kernel (`KERNEL_VERSION = 2`)
//!
//! For singleton cliques — the majority after segmentation — the training
//! weight factors exactly (SparseLDA, Yao et al. 2009):
//!
//! ```text
//! (α_k + N_dk)(β + N_wk)        α_k β         N_dk β       (α_k + N_dk) N_wk
//! ───────────────────────  =  ─────────  +  ─────────  +  ──────────────────
//!       Vβ + N_k                den_k          den_k             den_k
//!                             smoothing s_k  document r_k   topic-word q_k
//! ```
//!
//! `r_k` is nonzero only where `N_dk > 0` and `q_k` only where `N_wk > 0`,
//! so a draw costs O(K_doc + K_word) plus one dense-bucket draw served by
//! a periodically rebuilt alias table ([`SmoothingBucket`]) instead of
//! O(K). The decomposition preserves the sampling **distribution**
//! exactly — per topic, `s_k + r_k + q_k` equals the dense product up to
//! a few ulps of FP reassociation — but it consumes the RNG differently
//! (one stratified draw plus bucket-local walks instead of one dense
//! walk), so chains sampled by the two kernels diverge draw-by-draw while
//! remaining equal in law. [`KERNEL_VERSION`] names the RNG-consumption
//! contract; pinned chain digests are re-recorded exactly when it bumps.
//! Multi-token cliques and the frozen-φ serving/held-out views keep the
//! dense path above.

use rand::{Rng, RngCore};
use topmine_util::FxHashMap;

/// The RNG-consumption contract of the training sweeps. Version 1 was the
/// dense [`clique_posterior`] + [`sample_discrete`] walk for every clique;
/// version 2 routes singleton cliques through the bucketed sparse draw
/// ([`sample_singleton_sparse`]), which consumes a different (still fully
/// deterministic) RNG stream. Chain digests in the determinism guards are
/// re-recorded once per version bump and never otherwise; the dense
/// kernel remains selectable (`KernelMode::Dense` in the sampler) and
/// keeps its version-1 digests.
pub const KERNEL_VERSION: u32 = 2;

/// Read-side abstraction over the word factor of Eq. 7.
///
/// `word_numerator` receives the token `w` (in whatever id space the view
/// was built over — global vocabulary ids for training views, document-
/// local ids for gathered views) and `m`, the number of earlier occurrences
/// of `w` *within the clique*. `word_denominator` receives `j`, the number
/// of clique tokens already placed under topic `t`.
pub trait CountsView {
    /// Whether `word_numerator` reads its `m` argument. Frozen-φ views
    /// don't (φ carries no Gamma-ratio correction), which lets
    /// [`clique_posterior`] skip the multiplicity pass entirely on the
    /// serving and held-out hot paths.
    const USES_MULTIPLICITY: bool = true;

    fn n_topics(&self) -> usize;
    fn word_numerator(&self, w: u32, t: usize, m: u32) -> f64;
    fn word_denominator(&self, t: usize, j: u32) -> f64;
}

/// Training view over `N_wk`/`N_k` count tables: `num = β + N_wk + m`,
/// `den = Vβ + N_k + j`. The sequential sweep points it at the live global
/// tables; the thread-sharded sweep points it at a per-document gathered
/// copy of the sweep snapshot (word ids document-local) — same math, so
/// the two training paths cannot diverge in anything but schedule.
pub struct TrainView<'a> {
    n_wk: &'a [u32],
    n_k: &'a [u64],
    k: usize,
    beta: f64,
    v_beta: f64,
}

impl<'a> TrainView<'a> {
    pub fn new(n_wk: &'a [u32], n_k: &'a [u64], k: usize, beta: f64, v_beta: f64) -> Self {
        Self {
            n_wk,
            n_k,
            k,
            beta,
            v_beta,
        }
    }
}

impl CountsView for TrainView<'_> {
    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, m: u32) -> f64 {
        self.beta + self.n_wk[w as usize * self.k + t] as f64 + m as f64
    }

    #[inline]
    fn word_denominator(&self, t: usize, j: u32) -> f64 {
        self.v_beta + self.n_k[t] as f64 + j as f64
    }
}

/// Fold-in view over a frozen topic-major φ block (`K × n_words`, word ids
/// document-local): `num = φ_{k,w}`, `den = 1`. φ is a fixed point
/// estimate, so the Gamma-ratio multiplicity correction does not apply.
pub struct FrozenPhiView<'a> {
    phi: &'a [f64],
    n_words: usize,
    k: usize,
}

impl<'a> FrozenPhiView<'a> {
    pub fn new(phi: &'a [f64], n_words: usize, k: usize) -> Self {
        debug_assert_eq!(phi.len(), n_words * k);
        Self { phi, n_words, k }
    }
}

impl CountsView for FrozenPhiView<'_> {
    const USES_MULTIPLICITY: bool = false;

    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, _m: u32) -> f64 {
        self.phi[t * self.n_words + w as usize]
    }

    #[inline]
    fn word_denominator(&self, _t: usize, _j: u32) -> f64 {
        1.0
    }
}

/// Held-out fold-in view: φ expressed as counts over a *fixed* denominator
/// (`num = N_wk + β`, `den = N_k + Vβ` precomputed per topic). Like
/// [`FrozenPhiView`] this freezes the word side, so `m`/`j` do not enter.
pub struct FixedPhiView<'a> {
    n_wk: &'a [u32],
    phi_den: &'a [f64],
    k: usize,
    beta: f64,
}

impl<'a> FixedPhiView<'a> {
    pub fn new(n_wk: &'a [u32], phi_den: &'a [f64], k: usize, beta: f64) -> Self {
        Self {
            n_wk,
            phi_den,
            k,
            beta,
        }
    }
}

impl CountsView for FixedPhiView<'_> {
    const USES_MULTIPLICITY: bool = false;

    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, _m: u32) -> f64 {
        self.n_wk[w as usize * self.k + t] as f64 + self.beta
    }

    #[inline]
    fn word_denominator(&self, t: usize, _j: u32) -> f64 {
        self.phi_den[t]
    }
}

/// Reusable scratch for [`clique_posterior`]: within-clique multiplicities
/// and the buffers that compute them.
#[derive(Debug, Default, Clone)]
pub struct CliqueScratch {
    mult: Vec<u32>,
    seen: Vec<(u32, u32)>,
    seen_map: FxHashMap<u32, u32>,
}

/// Cliques at or below this length use a linear `seen` scan (cache-friendly
/// and allocation-free); longer ones switch to a hash map so the pass stays
/// O(s) instead of O(s²).
const SMALL_CLIQUE: usize = 32;

/// Fill `scratch.mult[j]` with the number of occurrences of `tokens[j]`
/// among `tokens[..j]`. Computed once per clique (the pre-kernel code
/// rescanned per topic, an O(K·s²) pass).
fn fill_multiplicities(tokens: &[u32], scratch: &mut CliqueScratch) {
    scratch.mult.clear();
    if tokens.len() <= SMALL_CLIQUE {
        scratch.seen.clear();
        for &w in tokens {
            let m = match scratch.seen.iter_mut().find(|(sw, _)| *sw == w) {
                Some((_, c)) => {
                    let m = *c;
                    *c += 1;
                    m
                }
                None => {
                    scratch.seen.push((w, 1));
                    0
                }
            };
            scratch.mult.push(m);
        }
    } else {
        scratch.seen_map.clear();
        for &w in tokens {
            let c = scratch.seen_map.entry(w).or_insert(0);
            scratch.mult.push(*c);
            *c += 1;
        }
    }
}

/// Weights whose maximum leaves `[2⁻²⁵⁶, 2²⁵⁶]` get rescaled by the
/// opposite bound. Both are exact powers of two, so rescaling preserves
/// weight ratios bit-for-bit.
const RESCALE_LO: f64 = f64::from_bits(767 << 52); // 2^-256
const RESCALE_HI: f64 = f64::from_bits(1279 << 52); // 2^256

/// Compute the unnormalized Eq. 7 posterior over topics for one clique.
///
/// * `view` — where the word factor reads from (live counts, gathered
///   snapshot, or frozen φ);
/// * `alpha` — the document-topic Dirichlet (length K);
/// * `doc_ndk` — this document's per-topic token counts *excluding the
///   clique being resampled* (length K);
/// * `tokens` — the clique's tokens, in the view's word-id space;
/// * `weights` — output, length K.
///
/// Short cliques reproduce the historical per-topic product bit-for-bit;
/// long cliques additionally rescale (exactly, see module docs) instead of
/// underflowing to the all-zero vector that used to force
/// [`sample_discrete`] into its uniform fallback.
pub fn clique_posterior<V: CountsView>(
    view: &V,
    alpha: &[f64],
    doc_ndk: &[u32],
    tokens: &[u32],
    scratch: &mut CliqueScratch,
    weights: &mut [f64],
) {
    let k = view.n_topics();
    debug_assert_eq!(weights.len(), k);
    debug_assert_eq!(alpha.len(), k);
    debug_assert_eq!(doc_ndk.len(), k);
    // Singleton fast path: after segmentation most cliques are unigrams,
    // where the Eq. 7 product collapses to one factor per topic — no
    // multiplicity pass (m = 0 always), no `fill(1.0)` pre-pass, no
    // rescale check. The arithmetic is operation-for-operation the general
    // loop at s = 1: `1.0 * x = x` and `y + 0.0 = y` are IEEE 754
    // identities for the positive finite values here, so the sampled chain
    // is bit-identical to the general path.
    if let [w] = tokens {
        for (t, slot) in weights.iter_mut().enumerate() {
            *slot = (alpha[t] + doc_ndk[t] as f64) * view.word_numerator(*w, t, 0)
                / view.word_denominator(t, 0);
        }
        debug_assert!(weights.iter().all(|w| w.is_finite()));
        return;
    }
    if V::USES_MULTIPLICITY {
        fill_multiplicities(tokens, scratch);
    }
    weights.fill(1.0);
    // Token-major: each weight slot sees the same left-to-right product of
    // `num_doc * num_word / den` factors as the old per-topic loop, so the
    // result is bit-identical — but the multiplicity pass runs once instead
    // of once per topic (or not at all for frozen-φ views), and rescaling
    // can act on the whole vector.
    let rescale_check = tokens.len() > 8;
    for (j, &w) in tokens.iter().enumerate() {
        let m = if V::USES_MULTIPLICITY {
            scratch.mult[j]
        } else {
            0
        };
        let jf = j as f64;
        for (t, slot) in weights.iter_mut().enumerate() {
            let num_doc = alpha[t] + doc_ndk[t] as f64 + jf;
            *slot *= num_doc * view.word_numerator(w, t, m) / view.word_denominator(t, j as u32);
        }
        if rescale_check {
            let max = weights.iter().fold(0.0f64, |a, &b| a.max(b));
            if max > 0.0 && max < RESCALE_LO {
                for slot in weights.iter_mut() {
                    *slot *= RESCALE_HI;
                }
            } else if max > RESCALE_HI {
                for slot in weights.iter_mut() {
                    *slot *= RESCALE_LO;
                }
            }
        }
    }
    debug_assert!(
        weights.iter().all(|w| w.is_finite()),
        "non-finite sampling weight (group len {})",
        tokens.len()
    );
}

/// Sample an index proportional to `weights` (unnormalized, non-negative).
/// This is the single definition shared by training and serving; the
/// uniform fallback remains as a last-resort guard, but
/// [`clique_posterior`]'s rescaling keeps well-formed inputs out of it.
#[inline]
pub fn sample_discrete<R: RngCore>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate: all weights zero/over/underflowed — uniform fallback.
        return rng.gen_range(0..weights.len());
    }
    cumulative_pick(weights, rng.gen_range(0.0..total))
}

/// First index whose cumulative weight exceeds `x`. When FP rounding in
/// the accumulator lets `x` run past the final partial sum, the draw must
/// still land on a *possible* outcome: walk back to the last index with a
/// strictly positive weight (the old `len - 1` fallback could return a
/// zero-probability index when the vector ends in zeros).
#[inline]
fn cumulative_pick(weights: &[f64], x: f64) -> usize {
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    last_positive(weights)
}

/// Largest index with a strictly positive weight; `len - 1` for an
/// all-zero vector (callers guard `total > 0`, so that arm is defensive).
#[inline]
fn last_positive(weights: &[f64]) -> usize {
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .unwrap_or(weights.len().saturating_sub(1))
}

/// The per-document RNG stream of the thread-sharded sweep: a SplitMix64
/// mix of `(seed, sweep, doc)`. Every document draws from its own stream,
/// so the sampled chain is a function of the snapshot alone — independent
/// of shard layout and thread count.
#[inline]
pub fn doc_stream_seed(seed: u64, sweep: u64, doc: u64) -> u64 {
    #[inline]
    fn splitmix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(splitmix(seed ^ sweep.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ doc)
}

/// Walker/Vose alias table: O(n) rebuild, O(1) draw from a fixed discrete
/// distribution. Serves the dense smoothing bucket of the sparse kernel.
#[derive(Debug, Default, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per cell, scaled to [0, 1].
    prob: Vec<f64>,
    alias: Vec<u32>,
    // Rebuild scratch (index stacks), kept to stay allocation-free.
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasTable {
    /// Rebuild over `weights` (non-negative, summing to `total > 0`).
    /// Deterministic: cells are partitioned and paired in index order.
    pub fn rebuild(&mut self, weights: &[f64], total: f64) {
        let n = weights.len();
        debug_assert!(n > 0 && total > 0.0);
        self.prob.clear();
        self.prob.resize(n, 1.0);
        self.alias.clear();
        self.alias.resize(n, 0);
        self.small.clear();
        self.large.clear();
        let scale = n as f64 / total;
        // First pass: provisional scaled masses, partitioned by side.
        for (i, &w) in weights.iter().enumerate() {
            let p = w * scale;
            self.prob[i] = p;
            if p < 1.0 {
                self.small.push(i as u32);
            } else {
                self.large.push(i as u32);
            }
        }
        // Pair each under-full cell with an over-full donor.
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.alias[s as usize] = l;
            let leftover = self.prob[l as usize] - (1.0 - self.prob[s as usize]);
            self.prob[l as usize] = leftover;
            if leftover < 1.0 {
                self.large.pop();
                self.small.push(l);
            }
        }
        // Leftovers on either stack are exactly full up to FP rounding.
        for &i in self.small.iter().chain(self.large.iter()) {
            self.prob[i as usize] = 1.0;
        }
    }

    /// Draw a cell index. Consumes exactly one `gen_range` call.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let u = rng.gen_range(0.0..n as f64);
        let cell = (u as usize).min(n - 1);
        let frac = u - cell as f64;
        if frac < self.prob[cell] {
            cell
        } else {
            self.alias[cell] as usize
        }
    }
}

/// After this many alias draws land on dirty topics in a row, fall back to
/// an exact linear scan over the clean topics. The bound keeps the draw
/// deterministic-time; the fallback draws from the same conditional
/// distribution, so the mixture stays exact.
const ALIAS_RETRIES: usize = 32;

/// The dense smoothing bucket `s_k = α_k β / (Vβ + N_k)`, served by an
/// alias table built against a reference `N_k` (the sweep snapshot in
/// parallel sweeps; the live table at the last rebuild in sequential
/// sweeps). Topics whose `N_k` moved since the rebuild are tracked in a
/// small dirty set and served by a linear walk at their *current* mass,
/// so the sampled distribution stays exact despite the periodic rebuild
/// cadence:
///
/// * total smoothing mass = `Σ s0 − Σ_dirty s0 + Σ_dirty s_current`;
/// * a draw below the dirty mass walks the dirty list at current values;
/// * the remaining mass is exactly `Σ_clean s0`, and an alias draw
///   conditioned on hitting a clean topic selects `t` with probability
///   `s0_t / Σ_clean s0` — the rejection loop changes nothing in law.
#[derive(Debug, Default, Clone)]
pub struct SmoothingBucket {
    /// `s_k` at rebuild time.
    s0: Vec<f64>,
    s0_total: f64,
    alias: AliasTable,
    /// Topics whose `N_k` changed since the rebuild, in mark order.
    dirty: Vec<u16>,
    dirty_mark: Vec<bool>,
    /// `s_k` under the *current* `N_k` (equal to `s0` for clean topics).
    s_live: Vec<f64>,
    /// Running `Σ_dirty s_live` — kept incrementally so the per-draw mass
    /// correction is O(1), not O(|dirty|) divisions.
    s_dirty: f64,
    /// Running `Σ_dirty s0`.
    s0_dirty: f64,
}

impl SmoothingBucket {
    /// Rebuild `s0` and the alias table against the given `(α, β, N_k)`;
    /// clears the dirty set.
    pub fn rebuild(&mut self, alpha: &[f64], beta: f64, v_beta: f64, n_k: &[u64]) {
        let k = alpha.len();
        debug_assert_eq!(n_k.len(), k);
        self.s0.clear();
        self.s0.extend(
            alpha
                .iter()
                .zip(n_k)
                .map(|(&a, &n)| a * beta / (v_beta + n as f64)),
        );
        self.s0_total = self.s0.iter().sum();
        self.alias.rebuild(&self.s0, self.s0_total);
        self.s_live.clear();
        self.s_live.extend_from_slice(&self.s0);
        self.s_dirty = 0.0;
        self.s0_dirty = 0.0;
        self.dirty.clear();
        if self.dirty_mark.len() != k {
            self.dirty_mark.clear();
            self.dirty_mark.resize(k, false);
        } else {
            self.dirty_mark.fill(false);
        }
    }

    /// Record that topic `t`'s `N_k` moved since the last rebuild, and fold
    /// its new mass into the running corrections. `inv_den` is the
    /// caller-precomputed `1 / (Vβ + N_k[t])` at the post-move count — the
    /// caller shares one reciprocal between this and
    /// [`DocBucket::update_topic`], halving the per-move division count.
    /// O(1): the per-draw mass query stays free of the O(|dirty|) division
    /// loop it would otherwise need.
    #[inline]
    pub fn mark_dirty(&mut self, t: usize, alpha_t: f64, beta: f64, inv_den: f64) {
        let w = alpha_t * beta * inv_den;
        if !self.dirty_mark[t] {
            self.dirty_mark[t] = true;
            self.dirty.push(t as u16);
            self.s0_dirty += self.s0[t];
            self.s_dirty += w;
        } else {
            self.s_dirty += w - self.s_live[t];
        }
        self.s_live[t] = w;
    }

    /// Forget the dirty set without rebuilding — valid only when the
    /// reference `N_k` is current again (the parallel sweep does this at
    /// document boundaries: each document starts from the frozen snapshot
    /// the alias table was built over).
    #[inline]
    pub fn clear_dirty(&mut self) {
        for &t in &self.dirty {
            let t = t as usize;
            self.dirty_mark[t] = false;
            self.s_live[t] = self.s0[t];
        }
        self.dirty.clear();
        self.s_dirty = 0.0;
        self.s0_dirty = 0.0;
    }

    #[inline]
    pub fn n_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// Test seam: the current total smoothing mass, exactly as the draw
    /// path computes it (rebuild-time total corrected by the running dirty
    /// sums). Not part of the sampling API.
    #[doc(hidden)]
    pub fn current_total(&self) -> f64 {
        self.masses().0
    }

    /// Current smoothing masses:
    /// `(total, dirty_current_total, dirty_rebuild_total)`. O(1) — the
    /// dirty corrections are maintained by [`Self::mark_dirty`]. The
    /// running `s_dirty` accumulates one rounding error per mark; every
    /// rebuild resets it, and the draw's region walks clamp to the last
    /// positive entry, so the drift is bounded and harmless (the same
    /// contract as [`DocBucket::update_topic`]).
    #[inline]
    fn masses(&self) -> (f64, f64, f64) {
        (
            self.s0_total - self.s0_dirty + self.s_dirty,
            self.s_dirty,
            self.s0_dirty,
        )
    }

    /// Draw a topic from the smoothing bucket given `u ∈ [0, total)` and
    /// the masses returned by [`Self::masses`].
    fn draw<R: RngCore>(&self, rng: &mut R, u: f64, s_dirty: f64, s0_dirty: f64) -> usize {
        let k = self.s0.len();
        if (!self.dirty.is_empty() && u < s_dirty) || self.dirty.len() == k {
            // Dirty region: walk the dirty list at current masses (every
            // term is strictly positive, so the runoff clamp is benign).
            let mut acc = 0.0;
            let mut last = self.dirty[0] as usize;
            for &t in &self.dirty {
                let t = t as usize;
                let w = self.s_live[t];
                acc += w;
                if w > 0.0 {
                    last = t;
                }
                if u < acc {
                    return t;
                }
            }
            return last;
        }
        // Clean region: alias draws at rebuild-time masses, rejecting
        // dirty topics (exact conditional; see type docs).
        for _ in 0..ALIAS_RETRIES {
            let t = self.alias.sample(rng);
            if !self.dirty_mark[t] {
                return t;
            }
        }
        // Exact fallback: linear scan of the clean topics by `s0`.
        let clean_total = self.s0_total - s0_dirty;
        let x = rng.gen_range(0.0..clean_total);
        let mut acc = 0.0;
        let mut last = usize::MAX;
        for t in 0..k {
            if self.dirty_mark[t] {
                continue;
            }
            let w = self.s0[t];
            acc += w;
            if w > 0.0 {
                last = t;
            }
            if x < acc {
                return t;
            }
        }
        debug_assert!(last != usize::MAX, "no clean topic with positive mass");
        last
    }
}

/// The per-document bucket `r_k = N_dk β / (Vβ + N_k)`: dense mirror of
/// the document's sparse `N_dk` row plus its running total, rebuilt at
/// each document start and updated in O(1) per topic move.
#[derive(Debug, Default, Clone)]
pub struct DocBucket {
    r: Vec<f64>,
    r_total: f64,
}

impl DocBucket {
    /// Recompute from scratch for one document (its nonzero topics,
    /// `N_dk` row, and the current `N_k`). O(K_doc) after an O(K) clear.
    pub fn begin_doc(
        &mut self,
        doc_nz: &[u16],
        doc_ndk: &[u32],
        n_k: &[u64],
        beta: f64,
        v_beta: f64,
        k: usize,
    ) {
        if self.r.len() != k {
            self.r.clear();
            self.r.resize(k, 0.0);
        } else {
            self.r.fill(0.0);
        }
        let mut total = 0.0;
        for &t in doc_nz {
            let t = t as usize;
            let w = doc_ndk[t] as f64 * beta / (v_beta + n_k[t] as f64);
            self.r[t] = w;
            total += w;
        }
        self.r_total = total;
    }

    /// Refresh topic `t` after its `N_dk` or `N_k` changed. `ndk_t` is the
    /// post-move `N_dk[t]`; `inv_den` is the caller-precomputed
    /// `1 / (Vβ + N_k[t])` shared with [`SmoothingBucket::mark_dirty`].
    /// The running total accumulates one rounding error per update; the
    /// per-document rebuild in [`Self::begin_doc`] bounds the drift, and
    /// the region walk clamps to the last positive entry (same guard class
    /// as [`sample_discrete`]'s runoff fallback).
    #[inline]
    pub fn update_topic(&mut self, t: usize, ndk_t: u32, beta: f64, inv_den: f64) {
        let w = if ndk_t == 0 {
            0.0
        } else {
            ndk_t as f64 * beta * inv_den
        };
        self.r_total += w - self.r[t];
        self.r[t] = w;
    }

    /// Test seam: the document bucket's per-topic mass. Not part of the
    /// sampling API.
    #[doc(hidden)]
    pub fn mass_of(&self, t: usize) -> f64 {
        self.r[t]
    }

    /// Test seam: the document bucket's running total.
    #[doc(hidden)]
    pub fn total(&self) -> f64 {
        self.r_total
    }
}

/// One bucketed singleton draw under the training posterior (Eq. 7 at
/// clique size 1), in O(K_word + K_doc + |dirty|) instead of O(K).
///
/// Caller contract:
/// * `word_row[t] > 0` exactly for `t ∈ word_nz` and `doc_ndk[t] > 0`
///   exactly for `t ∈ doc_nz` (both sorted — order is part of the
///   deterministic RNG-consumption contract);
/// * `doc_bucket` is in sync with `(doc_ndk, n_k)` and `smoothing`'s
///   dirty set covers every topic whose `N_k` differs from its rebuild;
/// * the clique being resampled is already removed from all counts.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn sample_singleton_sparse<R: RngCore>(
    rng: &mut R,
    alpha: &[f64],
    v_beta: f64,
    word_row: &[u32],
    word_nz: &[u16],
    doc_ndk: &[u32],
    doc_nz: &[u16],
    n_k: &[u64],
    doc_bucket: &DocBucket,
    smoothing: &SmoothingBucket,
    q_buf: &mut Vec<f64>,
) -> usize {
    sample_singleton_sparse_split(
        rng, alpha, v_beta, word_row, word_nz, doc_ndk, doc_nz, n_k, doc_bucket, smoothing, q_buf,
    )
    .0
}

/// Which bucket of the stratified singleton draw resolved the sample.
/// Telemetry only — the tag is derived from the already-drawn uniform, so
/// observing it changes neither RNG consumption nor arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingletonBucket {
    /// Topic-word bucket q (topics where the word has nonzero count).
    TopicWord,
    /// Document bucket r (topics active in the document).
    Doc,
    /// Smoothing bucket s (alias table over the α·β/(Vβ+N_k) floor).
    Smoothing,
}

/// [`sample_singleton_sparse`] plus the resolving [`SingletonBucket`], for
/// callers that track the draw split.
#[allow(clippy::too_many_arguments)]
pub fn sample_singleton_sparse_split<R: RngCore>(
    rng: &mut R,
    alpha: &[f64],
    v_beta: f64,
    word_row: &[u32],
    word_nz: &[u16],
    doc_ndk: &[u32],
    doc_nz: &[u16],
    n_k: &[u64],
    doc_bucket: &DocBucket,
    smoothing: &SmoothingBucket,
    q_buf: &mut Vec<f64>,
) -> (usize, SingletonBucket) {
    // Topic-word bucket q: the only per-draw O(K_word) computation.
    q_buf.clear();
    let mut q_total = 0.0;
    for &t in word_nz {
        let t = t as usize;
        let q = (alpha[t] + doc_ndk[t] as f64) * word_row[t] as f64 / (v_beta + n_k[t] as f64);
        q_buf.push(q);
        q_total += q;
    }
    let (s_total, s_dirty, s0_dirty) = smoothing.masses();
    let r_total = doc_bucket.r_total;
    let total = q_total + r_total + s_total;
    let mut u = rng.gen_range(0.0..total);
    // Stratify: q, then r, then s. Bucket totals are sums of strictly
    // positive terms, so each region walk has a positive entry to clamp to.
    if u < q_total {
        let mut acc = 0.0;
        let mut last = word_nz[0];
        for (i, &t) in word_nz.iter().enumerate() {
            let w = q_buf[i];
            acc += w;
            if w > 0.0 {
                last = t;
            }
            if u < acc {
                return (t as usize, SingletonBucket::TopicWord);
            }
        }
        return (last as usize, SingletonBucket::TopicWord);
    }
    u -= q_total;
    if u < r_total {
        let mut acc = 0.0;
        let mut last = doc_nz[0];
        for &t in doc_nz {
            let w = doc_bucket.r[t as usize];
            acc += w;
            if w > 0.0 {
                last = t;
            }
            if u < acc {
                return (t as usize, SingletonBucket::Doc);
            }
        }
        return (last as usize, SingletonBucket::Doc);
    }
    u -= r_total;
    (
        smoothing.draw(rng, u.min(s_total), s_dirty, s0_dirty),
        SingletonBucket::Smoothing,
    )
}

/// The dense singleton weight per topic, for cross-checking the bucket
/// decomposition: `s_k + r_k + q_k` must equal this within a few ulps.
#[doc(hidden)]
pub fn singleton_dense_weight(
    alpha: f64,
    beta: f64,
    v_beta: f64,
    n_wk: u32,
    n_dk: u32,
    n_k: u64,
) -> f64 {
    (alpha + n_dk as f64) * (beta + n_wk as f64) / (v_beta + n_k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_train_view<'a>(n_wk: &'a [u32], n_k: &'a [u64], k: usize) -> TrainView<'a> {
        TrainView::new(n_wk, n_k, k, 0.01, 0.01 * (n_wk.len() / k) as f64)
    }

    #[test]
    fn multiplicity_paths_agree() {
        // Same token stream through the linear-scan and hash-map paths.
        let long: Vec<u32> = (0..100u32).map(|i| i % 7).collect();
        let mut a = CliqueScratch::default();
        let mut b = CliqueScratch::default();
        fill_multiplicities(&long[..SMALL_CLIQUE], &mut a);
        fill_multiplicities(&long, &mut b);
        assert_eq!(a.mult[..], b.mult[..SMALL_CLIQUE]);
        // Spot-check: token j has seen j/7 earlier copies of itself.
        for (j, &m) in b.mult.iter().enumerate() {
            assert_eq!(m as usize, j / 7, "position {j}");
        }
    }

    #[test]
    fn singleton_fast_path_is_bit_identical_to_the_general_loop() {
        // The historical general path at s = 1: fill(1.0), then one
        // `*= num_doc * num / den` factor with jf = 0.0 and m = 0.
        let k = 6;
        let v = 30usize;
        let n_wk: Vec<u32> = (0..v * k).map(|i| ((i * 7) % 13) as u32).collect();
        let n_k: Vec<u64> = (0..k).map(|t| 50 + 11 * t as u64).collect();
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha: Vec<f64> = (0..k).map(|t| 0.3 + 0.17 * t as f64).collect();
        let doc_ndk: Vec<u32> = (0..k as u32).map(|t| t * 2).collect();
        let mut scratch = CliqueScratch::default();
        let mut fast = vec![0.0f64; k];
        for w in 0..v as u32 {
            clique_posterior(&view, &alpha, &doc_ndk, &[w], &mut scratch, &mut fast);
            for t in 0..k {
                let mut general = 1.0f64;
                let num_doc = alpha[t] + doc_ndk[t] as f64 + 0.0f64;
                general *= num_doc * view.word_numerator(w, t, 0) / view.word_denominator(t, 0);
                assert_eq!(
                    fast[t].to_bits(),
                    general.to_bits(),
                    "w={w} t={t}: {} vs {general}",
                    fast[t]
                );
            }
        }
        // Same bit-identity through a frozen-φ view (the serving path).
        let phi: Vec<f64> = (0..k * 4).map(|i| 1e-3 + (i as f64) * 1e-2).collect();
        let fview = FrozenPhiView::new(&phi, 4, k);
        for w in 0..4u32 {
            clique_posterior(&fview, &alpha, &doc_ndk, &[w], &mut scratch, &mut fast);
            for t in 0..k {
                let general = 1.0f64
                    * ((alpha[t] + doc_ndk[t] as f64 + 0.0) * fview.word_numerator(w, t, 0)
                        / fview.word_denominator(t, 0));
                assert_eq!(fast[t].to_bits(), general.to_bits());
            }
        }
    }

    #[test]
    fn long_clique_does_not_underflow_to_uniform() {
        // 200-token clique with tiny counts: the historical per-topic
        // product underflows to an all-zero weight vector and
        // sample_discrete degrades to a uniform draw. The kernel's exact
        // rescaling must keep the posterior alive.
        let k = 4;
        let v = 50usize;
        let mut n_wk = vec![0u32; v * k];
        let n_k: Vec<u64> = vec![40, 1, 1, 1];
        // Topic 0 owns every word this clique uses.
        for w in 0..v {
            n_wk[w * k] = 4;
        }
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha = vec![0.1; k];
        let doc_ndk = vec![0u32; k];
        let tokens: Vec<u32> = (0..200u32).map(|i| i % v as u32).collect();
        let mut scratch = CliqueScratch::default();
        let mut weights = vec![0.0; k];
        clique_posterior(&view, &alpha, &doc_ndk, &tokens, &mut scratch, &mut weights);
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "posterior underflowed: {weights:?}"
        );
        // Topic 0 must dominate — a uniform fallback would have lost this.
        let best = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
        assert!(weights[0] > 1e3 * weights[1]);
        // And sampling never takes the uniform-fallback branch: with these
        // weights every draw lands on topic 0.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(sample_discrete(&mut rng, &weights), 0);
        }
    }

    #[test]
    fn rescaling_preserves_ratios_exactly() {
        let k = 3;
        let v = 10usize;
        let n_wk = vec![1u32; v * k];
        let n_k = vec![10u64; k];
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha = vec![0.5; k];
        let doc_ndk = vec![3u32, 1, 0];
        let tokens: Vec<u32> = (0..120u32).map(|i| i % v as u32).collect();
        let mut scratch = CliqueScratch::default();
        let mut weights = vec![0.0; k];
        clique_posterior(&view, &alpha, &doc_ndk, &tokens, &mut scratch, &mut weights);
        // Recompute the same posterior in extended precision via logs; the
        // rescaled weights' ratios must match to FP accuracy.
        let mut logw = vec![0.0f64; k];
        for (j, &w) in tokens.iter().enumerate() {
            let m = scratch.mult[j];
            for (t, lw) in logw.iter_mut().enumerate() {
                *lw += ((alpha[t] + doc_ndk[t] as f64 + j as f64) * view.word_numerator(w, t, m)
                    / view.word_denominator(t, j as u32))
                .ln();
            }
        }
        let r_kernel = weights[1] / weights[0];
        let r_log = (logw[1] - logw[0]).exp();
        assert!(
            (r_kernel.ln() - r_log.ln()).abs() < 1e-9,
            "{r_kernel} vs {r_log}"
        );
    }

    #[test]
    fn sample_discrete_is_proportional_and_deterministic() {
        let weights = [1.0, 3.0, 0.0, 4.0];
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = [0usize; 4];
        for _ in 0..8000 {
            hits[sample_discrete(&mut rng, &weights)] += 1;
        }
        assert_eq!(hits[2], 0);
        assert!((hits[1] as f64 / hits[0] as f64 - 3.0).abs() < 0.5);
        assert!((hits[3] as f64 / hits[0] as f64 - 4.0).abs() < 0.6);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                sample_discrete(&mut a, &weights),
                sample_discrete(&mut b, &weights)
            );
        }
    }

    #[test]
    fn runoff_fallback_lands_on_the_last_positive_weight() {
        // Regression: when FP rounding lets the draw run past the final
        // partial sum, the old fallback returned `len - 1` even when that
        // weight was exactly 0.0 — a zero-probability topic. The walk must
        // clamp to the last positive index instead.
        let trailing_zeros = [2.0, 1.0, 0.0, 0.0];
        assert_eq!(cumulative_pick(&trailing_zeros, 3.0), 1);
        assert_eq!(cumulative_pick(&trailing_zeros, f64::INFINITY), 1);
        assert_eq!(cumulative_pick(&[0.0, 0.5, 0.0], 0.5), 1);
        // Normal in-range draws are untouched.
        assert_eq!(cumulative_pick(&trailing_zeros, 0.0), 0);
        assert_eq!(cumulative_pick(&trailing_zeros, 1.9999), 0);
        assert_eq!(cumulative_pick(&trailing_zeros, 2.5), 1);
        // And sampling through the public entry point never yields a
        // zero-weight index.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4000 {
            assert!(sample_discrete(&mut rng, &trailing_zeros) < 2);
        }
    }

    #[test]
    fn alias_table_matches_the_distribution() {
        let weights = [0.05, 4.0, 0.0, 1.0, 0.95];
        let total: f64 = weights.iter().sum();
        let mut alias = AliasTable::default();
        alias.rebuild(&weights, total);
        let mut rng = StdRng::seed_from_u64(17);
        let mut hits = [0u64; 5];
        let n = 200_000;
        for _ in 0..n {
            hits[alias.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[2], 0, "zero-mass cell must never be drawn");
        for (t, &h) in hits.iter().enumerate() {
            let expect = weights[t] / total;
            let got = h as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "topic {t}: {got} vs {expect}");
        }
        // Rebuild is deterministic: same inputs, same table.
        let mut again = AliasTable::default();
        again.rebuild(&weights, total);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(alias.sample(&mut a), again.sample(&mut b));
        }
    }

    #[test]
    fn bucket_decomposition_sums_to_the_dense_weight() {
        let k = 8;
        let beta = 0.01;
        let v_beta = 500.0 * beta;
        let alpha: Vec<f64> = (0..k).map(|t| 0.1 + 0.37 * t as f64).collect();
        let n_k: Vec<u64> = (0..k).map(|t| 3 + 29 * t as u64).collect();
        let doc_ndk: Vec<u32> = vec![0, 3, 0, 0, 7, 0, 1, 0];
        let word_row: Vec<u32> = vec![2, 0, 0, 5, 0, 0, 1, 0];
        for t in 0..k {
            let s = alpha[t] * beta / (v_beta + n_k[t] as f64);
            let r = doc_ndk[t] as f64 * beta / (v_beta + n_k[t] as f64);
            let q = (alpha[t] + doc_ndk[t] as f64) * word_row[t] as f64 / (v_beta + n_k[t] as f64);
            let dense =
                singleton_dense_weight(alpha[t], beta, v_beta, word_row[t], doc_ndk[t], n_k[t]);
            let sum = s + r + q;
            assert!(
                ((sum - dense) / dense).abs() < 1e-12,
                "topic {t}: {sum} vs {dense}"
            );
        }
    }

    #[test]
    fn smoothing_bucket_stays_exact_with_dirty_topics() {
        // Empirical check: after marking some topics dirty (with moved
        // N_k), the bucket's draw frequencies must match the *current*
        // smoothing distribution, not the rebuild-time one.
        let k = 6;
        let beta = 0.05;
        let v_beta = 40.0 * beta;
        let alpha: Vec<f64> = (0..k).map(|t| 0.4 + 0.2 * t as f64).collect();
        let n_k0: Vec<u64> = vec![10, 20, 30, 40, 50, 60];
        let mut bucket = SmoothingBucket::default();
        bucket.rebuild(&alpha, beta, v_beta, &n_k0);
        // Topics 1 and 4 moved a lot since the rebuild.
        let n_k: Vec<u64> = vec![10, 200, 30, 40, 2, 60];
        bucket.mark_dirty(1, alpha[1], beta, 1.0 / (v_beta + n_k[1] as f64));
        bucket.mark_dirty(4, alpha[4], beta, 1.0 / (v_beta + n_k[4] as f64));
        let s: Vec<f64> = (0..k)
            .map(|t| alpha[t] * beta / (v_beta + n_k[t] as f64))
            .collect();
        let s_total: f64 = s.iter().sum();
        let (m_total, _, _) = bucket.masses();
        assert!(((m_total - s_total) / s_total).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(23);
        let mut hits = vec![0u64; k];
        let n = 300_000;
        for _ in 0..n {
            let (total, s_dirty, s0_dirty) = bucket.masses();
            let u = rng.gen_range(0.0..total);
            hits[bucket.draw(&mut rng, u, s_dirty, s0_dirty)] += 1;
        }
        for t in 0..k {
            let expect = s[t] / s_total;
            let got = hits[t] as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "topic {t}: {got} vs {expect}");
        }
    }

    #[test]
    fn doc_streams_are_distinct_and_stable() {
        assert_eq!(doc_stream_seed(1, 2, 3), doc_stream_seed(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for sweep in 0..8 {
            for doc in 0..64 {
                assert!(seen.insert(doc_stream_seed(42, sweep, doc)));
            }
        }
    }
}
