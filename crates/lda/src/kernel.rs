//! The shared Eq. 7 clique-posterior kernel.
//!
//! Every Gibbs update in the workspace — training sweeps (sequential and
//! thread-sharded), held-out fold-in, and the serving layer's frozen-φ
//! fold-in (`topmine_serve::infer`) — samples a topic for a *clique* of
//! tokens from the same posterior shape:
//!
//! ```text
//! p(C = k | ·) ∝ ∏_{j=0..s-1} (α_k + N_dk + j) · num_k(w_j, m_j) / den_k(j)
//! ```
//!
//! The document side `(α_k + N_dk + j)` is universal; what varies is where
//! the word side reads from. [`CountsView`] abstracts exactly that seam:
//!
//! * training reads live Gibbs counts — `num = β + N_wk + m`,
//!   `den = Vβ + N_k + j` (the exact Gamma-ratio form with the
//!   within-clique multiplicity `m`);
//! * the parallel sweep reads the same formula through a per-document
//!   *gathered* copy of the sweep snapshot (document-local word ids);
//! * fold-in reads a frozen φ point estimate — `num = φ_{k,w}`, `den = 1`
//!   (φ is fixed, so there is no Gamma-ratio correction).
//!
//! Keeping the loop here means training and serving can never drift: there
//! is exactly one implementation of the posterior and one
//! [`sample_discrete`].
//!
//! # Numerical contract
//!
//! The per-topic weight is a product over clique tokens and underflows for
//! long cliques (a 200-token clique at β = 0.01 is far below `f64::MIN`).
//! The kernel rescales the whole weight vector by a power of two whenever
//! its maximum drifts out of a safe window. Power-of-two scaling is exact
//! in IEEE 754, so the *ratios* between weights — the only thing sampling
//! consumes — are preserved bit-for-bit, and when no rescale triggers the
//! computation is bit-identical to the pre-kernel per-topic loops.

use rand::{Rng, RngCore};
use topmine_util::FxHashMap;

/// Read-side abstraction over the word factor of Eq. 7.
///
/// `word_numerator` receives the token `w` (in whatever id space the view
/// was built over — global vocabulary ids for training views, document-
/// local ids for gathered views) and `m`, the number of earlier occurrences
/// of `w` *within the clique*. `word_denominator` receives `j`, the number
/// of clique tokens already placed under topic `t`.
pub trait CountsView {
    /// Whether `word_numerator` reads its `m` argument. Frozen-φ views
    /// don't (φ carries no Gamma-ratio correction), which lets
    /// [`clique_posterior`] skip the multiplicity pass entirely on the
    /// serving and held-out hot paths.
    const USES_MULTIPLICITY: bool = true;

    fn n_topics(&self) -> usize;
    fn word_numerator(&self, w: u32, t: usize, m: u32) -> f64;
    fn word_denominator(&self, t: usize, j: u32) -> f64;
}

/// Training view over `N_wk`/`N_k` count tables: `num = β + N_wk + m`,
/// `den = Vβ + N_k + j`. The sequential sweep points it at the live global
/// tables; the thread-sharded sweep points it at a per-document gathered
/// copy of the sweep snapshot (word ids document-local) — same math, so
/// the two training paths cannot diverge in anything but schedule.
pub struct TrainView<'a> {
    n_wk: &'a [u32],
    n_k: &'a [u64],
    k: usize,
    beta: f64,
    v_beta: f64,
}

impl<'a> TrainView<'a> {
    pub fn new(n_wk: &'a [u32], n_k: &'a [u64], k: usize, beta: f64, v_beta: f64) -> Self {
        Self {
            n_wk,
            n_k,
            k,
            beta,
            v_beta,
        }
    }
}

impl CountsView for TrainView<'_> {
    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, m: u32) -> f64 {
        self.beta + self.n_wk[w as usize * self.k + t] as f64 + m as f64
    }

    #[inline]
    fn word_denominator(&self, t: usize, j: u32) -> f64 {
        self.v_beta + self.n_k[t] as f64 + j as f64
    }
}

/// Fold-in view over a frozen topic-major φ block (`K × n_words`, word ids
/// document-local): `num = φ_{k,w}`, `den = 1`. φ is a fixed point
/// estimate, so the Gamma-ratio multiplicity correction does not apply.
pub struct FrozenPhiView<'a> {
    phi: &'a [f64],
    n_words: usize,
    k: usize,
}

impl<'a> FrozenPhiView<'a> {
    pub fn new(phi: &'a [f64], n_words: usize, k: usize) -> Self {
        debug_assert_eq!(phi.len(), n_words * k);
        Self { phi, n_words, k }
    }
}

impl CountsView for FrozenPhiView<'_> {
    const USES_MULTIPLICITY: bool = false;

    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, _m: u32) -> f64 {
        self.phi[t * self.n_words + w as usize]
    }

    #[inline]
    fn word_denominator(&self, _t: usize, _j: u32) -> f64 {
        1.0
    }
}

/// Held-out fold-in view: φ expressed as counts over a *fixed* denominator
/// (`num = N_wk + β`, `den = N_k + Vβ` precomputed per topic). Like
/// [`FrozenPhiView`] this freezes the word side, so `m`/`j` do not enter.
pub struct FixedPhiView<'a> {
    n_wk: &'a [u32],
    phi_den: &'a [f64],
    k: usize,
    beta: f64,
}

impl<'a> FixedPhiView<'a> {
    pub fn new(n_wk: &'a [u32], phi_den: &'a [f64], k: usize, beta: f64) -> Self {
        Self {
            n_wk,
            phi_den,
            k,
            beta,
        }
    }
}

impl CountsView for FixedPhiView<'_> {
    const USES_MULTIPLICITY: bool = false;

    #[inline]
    fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    fn word_numerator(&self, w: u32, t: usize, _m: u32) -> f64 {
        self.n_wk[w as usize * self.k + t] as f64 + self.beta
    }

    #[inline]
    fn word_denominator(&self, t: usize, _j: u32) -> f64 {
        self.phi_den[t]
    }
}

/// Reusable scratch for [`clique_posterior`]: within-clique multiplicities
/// and the buffers that compute them.
#[derive(Debug, Default, Clone)]
pub struct CliqueScratch {
    mult: Vec<u32>,
    seen: Vec<(u32, u32)>,
    seen_map: FxHashMap<u32, u32>,
}

/// Cliques at or below this length use a linear `seen` scan (cache-friendly
/// and allocation-free); longer ones switch to a hash map so the pass stays
/// O(s) instead of O(s²).
const SMALL_CLIQUE: usize = 32;

/// Fill `scratch.mult[j]` with the number of occurrences of `tokens[j]`
/// among `tokens[..j]`. Computed once per clique (the pre-kernel code
/// rescanned per topic, an O(K·s²) pass).
fn fill_multiplicities(tokens: &[u32], scratch: &mut CliqueScratch) {
    scratch.mult.clear();
    if tokens.len() <= SMALL_CLIQUE {
        scratch.seen.clear();
        for &w in tokens {
            let m = match scratch.seen.iter_mut().find(|(sw, _)| *sw == w) {
                Some((_, c)) => {
                    let m = *c;
                    *c += 1;
                    m
                }
                None => {
                    scratch.seen.push((w, 1));
                    0
                }
            };
            scratch.mult.push(m);
        }
    } else {
        scratch.seen_map.clear();
        for &w in tokens {
            let c = scratch.seen_map.entry(w).or_insert(0);
            scratch.mult.push(*c);
            *c += 1;
        }
    }
}

/// Weights whose maximum leaves `[2⁻²⁵⁶, 2²⁵⁶]` get rescaled by the
/// opposite bound. Both are exact powers of two, so rescaling preserves
/// weight ratios bit-for-bit.
const RESCALE_LO: f64 = f64::from_bits(767 << 52); // 2^-256
const RESCALE_HI: f64 = f64::from_bits(1279 << 52); // 2^256

/// Compute the unnormalized Eq. 7 posterior over topics for one clique.
///
/// * `view` — where the word factor reads from (live counts, gathered
///   snapshot, or frozen φ);
/// * `alpha` — the document-topic Dirichlet (length K);
/// * `doc_ndk` — this document's per-topic token counts *excluding the
///   clique being resampled* (length K);
/// * `tokens` — the clique's tokens, in the view's word-id space;
/// * `weights` — output, length K.
///
/// Short cliques reproduce the historical per-topic product bit-for-bit;
/// long cliques additionally rescale (exactly, see module docs) instead of
/// underflowing to the all-zero vector that used to force
/// [`sample_discrete`] into its uniform fallback.
pub fn clique_posterior<V: CountsView>(
    view: &V,
    alpha: &[f64],
    doc_ndk: &[u32],
    tokens: &[u32],
    scratch: &mut CliqueScratch,
    weights: &mut [f64],
) {
    let k = view.n_topics();
    debug_assert_eq!(weights.len(), k);
    debug_assert_eq!(alpha.len(), k);
    debug_assert_eq!(doc_ndk.len(), k);
    // Singleton fast path: after segmentation most cliques are unigrams,
    // where the Eq. 7 product collapses to one factor per topic — no
    // multiplicity pass (m = 0 always), no `fill(1.0)` pre-pass, no
    // rescale check. The arithmetic is operation-for-operation the general
    // loop at s = 1: `1.0 * x = x` and `y + 0.0 = y` are IEEE 754
    // identities for the positive finite values here, so the sampled chain
    // is bit-identical to the general path.
    if let [w] = tokens {
        for (t, slot) in weights.iter_mut().enumerate() {
            *slot = (alpha[t] + doc_ndk[t] as f64) * view.word_numerator(*w, t, 0)
                / view.word_denominator(t, 0);
        }
        debug_assert!(weights.iter().all(|w| w.is_finite()));
        return;
    }
    if V::USES_MULTIPLICITY {
        fill_multiplicities(tokens, scratch);
    }
    weights.fill(1.0);
    // Token-major: each weight slot sees the same left-to-right product of
    // `num_doc * num_word / den` factors as the old per-topic loop, so the
    // result is bit-identical — but the multiplicity pass runs once instead
    // of once per topic (or not at all for frozen-φ views), and rescaling
    // can act on the whole vector.
    let rescale_check = tokens.len() > 8;
    for (j, &w) in tokens.iter().enumerate() {
        let m = if V::USES_MULTIPLICITY {
            scratch.mult[j]
        } else {
            0
        };
        let jf = j as f64;
        for (t, slot) in weights.iter_mut().enumerate() {
            let num_doc = alpha[t] + doc_ndk[t] as f64 + jf;
            *slot *= num_doc * view.word_numerator(w, t, m) / view.word_denominator(t, j as u32);
        }
        if rescale_check {
            let max = weights.iter().fold(0.0f64, |a, &b| a.max(b));
            if max > 0.0 && max < RESCALE_LO {
                for slot in weights.iter_mut() {
                    *slot *= RESCALE_HI;
                }
            } else if max > RESCALE_HI {
                for slot in weights.iter_mut() {
                    *slot *= RESCALE_LO;
                }
            }
        }
    }
    debug_assert!(
        weights.iter().all(|w| w.is_finite()),
        "non-finite sampling weight (group len {})",
        tokens.len()
    );
}

/// Sample an index proportional to `weights` (unnormalized, non-negative).
/// This is the single definition shared by training and serving; the
/// uniform fallback remains as a last-resort guard, but
/// [`clique_posterior`]'s rescaling keeps well-formed inputs out of it.
#[inline]
pub fn sample_discrete<R: RngCore>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate: all weights zero/over/underflowed — uniform fallback.
        return rng.gen_range(0..weights.len());
    }
    let x = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// The per-document RNG stream of the thread-sharded sweep: a SplitMix64
/// mix of `(seed, sweep, doc)`. Every document draws from its own stream,
/// so the sampled chain is a function of the snapshot alone — independent
/// of shard layout and thread count.
#[inline]
pub fn doc_stream_seed(seed: u64, sweep: u64, doc: u64) -> u64 {
    #[inline]
    fn splitmix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(splitmix(seed ^ sweep.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_train_view<'a>(n_wk: &'a [u32], n_k: &'a [u64], k: usize) -> TrainView<'a> {
        TrainView::new(n_wk, n_k, k, 0.01, 0.01 * (n_wk.len() / k) as f64)
    }

    #[test]
    fn multiplicity_paths_agree() {
        // Same token stream through the linear-scan and hash-map paths.
        let long: Vec<u32> = (0..100u32).map(|i| i % 7).collect();
        let mut a = CliqueScratch::default();
        let mut b = CliqueScratch::default();
        fill_multiplicities(&long[..SMALL_CLIQUE], &mut a);
        fill_multiplicities(&long, &mut b);
        assert_eq!(a.mult[..], b.mult[..SMALL_CLIQUE]);
        // Spot-check: token j has seen j/7 earlier copies of itself.
        for (j, &m) in b.mult.iter().enumerate() {
            assert_eq!(m as usize, j / 7, "position {j}");
        }
    }

    #[test]
    fn singleton_fast_path_is_bit_identical_to_the_general_loop() {
        // The historical general path at s = 1: fill(1.0), then one
        // `*= num_doc * num / den` factor with jf = 0.0 and m = 0.
        let k = 6;
        let v = 30usize;
        let n_wk: Vec<u32> = (0..v * k).map(|i| ((i * 7) % 13) as u32).collect();
        let n_k: Vec<u64> = (0..k).map(|t| 50 + 11 * t as u64).collect();
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha: Vec<f64> = (0..k).map(|t| 0.3 + 0.17 * t as f64).collect();
        let doc_ndk: Vec<u32> = (0..k as u32).map(|t| t * 2).collect();
        let mut scratch = CliqueScratch::default();
        let mut fast = vec![0.0f64; k];
        for w in 0..v as u32 {
            clique_posterior(&view, &alpha, &doc_ndk, &[w], &mut scratch, &mut fast);
            for t in 0..k {
                let mut general = 1.0f64;
                let num_doc = alpha[t] + doc_ndk[t] as f64 + 0.0f64;
                general *= num_doc * view.word_numerator(w, t, 0) / view.word_denominator(t, 0);
                assert_eq!(
                    fast[t].to_bits(),
                    general.to_bits(),
                    "w={w} t={t}: {} vs {general}",
                    fast[t]
                );
            }
        }
        // Same bit-identity through a frozen-φ view (the serving path).
        let phi: Vec<f64> = (0..k * 4).map(|i| 1e-3 + (i as f64) * 1e-2).collect();
        let fview = FrozenPhiView::new(&phi, 4, k);
        for w in 0..4u32 {
            clique_posterior(&fview, &alpha, &doc_ndk, &[w], &mut scratch, &mut fast);
            for t in 0..k {
                let general = 1.0f64
                    * ((alpha[t] + doc_ndk[t] as f64 + 0.0) * fview.word_numerator(w, t, 0)
                        / fview.word_denominator(t, 0));
                assert_eq!(fast[t].to_bits(), general.to_bits());
            }
        }
    }

    #[test]
    fn long_clique_does_not_underflow_to_uniform() {
        // 200-token clique with tiny counts: the historical per-topic
        // product underflows to an all-zero weight vector and
        // sample_discrete degrades to a uniform draw. The kernel's exact
        // rescaling must keep the posterior alive.
        let k = 4;
        let v = 50usize;
        let mut n_wk = vec![0u32; v * k];
        let n_k: Vec<u64> = vec![40, 1, 1, 1];
        // Topic 0 owns every word this clique uses.
        for w in 0..v {
            n_wk[w * k] = 4;
        }
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha = vec![0.1; k];
        let doc_ndk = vec![0u32; k];
        let tokens: Vec<u32> = (0..200u32).map(|i| i % v as u32).collect();
        let mut scratch = CliqueScratch::default();
        let mut weights = vec![0.0; k];
        clique_posterior(&view, &alpha, &doc_ndk, &tokens, &mut scratch, &mut weights);
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "posterior underflowed: {weights:?}"
        );
        // Topic 0 must dominate — a uniform fallback would have lost this.
        let best = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
        assert!(weights[0] > 1e3 * weights[1]);
        // And sampling never takes the uniform-fallback branch: with these
        // weights every draw lands on topic 0.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(sample_discrete(&mut rng, &weights), 0);
        }
    }

    #[test]
    fn rescaling_preserves_ratios_exactly() {
        let k = 3;
        let v = 10usize;
        let n_wk = vec![1u32; v * k];
        let n_k = vec![10u64; k];
        let view = tiny_train_view(&n_wk, &n_k, k);
        let alpha = vec![0.5; k];
        let doc_ndk = vec![3u32, 1, 0];
        let tokens: Vec<u32> = (0..120u32).map(|i| i % v as u32).collect();
        let mut scratch = CliqueScratch::default();
        let mut weights = vec![0.0; k];
        clique_posterior(&view, &alpha, &doc_ndk, &tokens, &mut scratch, &mut weights);
        // Recompute the same posterior in extended precision via logs; the
        // rescaled weights' ratios must match to FP accuracy.
        let mut logw = vec![0.0f64; k];
        for (j, &w) in tokens.iter().enumerate() {
            let m = scratch.mult[j];
            for (t, lw) in logw.iter_mut().enumerate() {
                *lw += ((alpha[t] + doc_ndk[t] as f64 + j as f64) * view.word_numerator(w, t, m)
                    / view.word_denominator(t, j as u32))
                .ln();
            }
        }
        let r_kernel = weights[1] / weights[0];
        let r_log = (logw[1] - logw[0]).exp();
        assert!(
            (r_kernel.ln() - r_log.ln()).abs() < 1e-9,
            "{r_kernel} vs {r_log}"
        );
    }

    #[test]
    fn sample_discrete_is_proportional_and_deterministic() {
        let weights = [1.0, 3.0, 0.0, 4.0];
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = [0usize; 4];
        for _ in 0..8000 {
            hits[sample_discrete(&mut rng, &weights)] += 1;
        }
        assert_eq!(hits[2], 0);
        assert!((hits[1] as f64 / hits[0] as f64 - 3.0).abs() < 0.5);
        assert!((hits[3] as f64 / hits[0] as f64 - 4.0).abs() < 0.6);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                sample_discrete(&mut a, &weights),
                sample_discrete(&mut b, &weights)
            );
        }
    }

    #[test]
    fn doc_streams_are_distinct_and_stable() {
        assert_eq!(doc_stream_seed(1, 2, 3), doc_stream_seed(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for sweep in 0..8 {
            for doc in 0..64 {
                assert!(seen.insert(doc_stream_seed(42, sweep, doc)));
            }
        }
    }
}
