//! The Gibbs count state: `N_dk`, `N_wk`, `N_k` behind one type.
//!
//! [`TopicCounts`] owns the three tables every reader of the sampler state
//! goes through — the sequential sweep, the thread-sharded sweep's
//! snapshot, φ/θ point estimates, perplexity, and Minka's fixed-point
//! hyperparameter updates. Centralizing them keeps the add/remove
//! bookkeeping in one place and gives the parallel scheduler a single
//! thing to snapshot and merge.
//!
//! # Amortized snapshots
//!
//! The thread-sharded sweep samples every document against a frozen copy
//! of `N_wk`/`N_k`. Re-cloning those tables each sweep is O(V·K) — for
//! huge vocabularies that copy dominates the sweep. [`TopicCounts`]
//! therefore double-buffers: it keeps a second `snap_wk`/`snap_k` pair,
//! and [`apply_delta`](TopicCounts::apply_delta) rolls each sweep's sparse
//! `(idx, Δ)` barrier merge into *both* buffers. Because the deltas are
//! exact integers, `snapshot = previous snapshot + merged deltas` is
//! bit-identical to a fresh clone, but costs O(nnz) — proportional to how
//! many counts actually moved, independent of V·K. A full copy happens
//! only when the snapshot is stale: the first parallel sweep, or after a
//! sequential mutation ([`add_group`](TopicCounts::add_group)/
//! [`remove_group`](TopicCounts::remove_group) invalidate it).

/// Dense count tables of a collapsed Gibbs chain over `D` documents,
/// `V` words, and `K` topics, plus the amortized sweep-snapshot buffers.
///
/// Equality compares only the live chain state (`N_dk`/`N_wk`/`N_k`);
/// the snapshot buffers are a cache and never observable.
#[derive(Debug, Clone)]
pub struct TopicCounts {
    k: usize,
    v: usize,
    /// `N_{d,k}`: tokens of doc d assigned to topic k (row-major `d*K + k`).
    pub(crate) n_dk: Vec<u32>,
    /// `N_{w,k}`: tokens of word w assigned to topic k (row-major `w*K + k`).
    pub(crate) n_wk: Vec<u32>,
    /// `N_k`: tokens assigned to topic k.
    pub(crate) n_k: Vec<u64>,
    /// Double buffer of `n_wk` for parallel sweeps (empty until the first
    /// [`refresh_snapshot`](TopicCounts::refresh_snapshot)).
    snap_wk: Vec<u32>,
    /// Double buffer of `n_k`.
    snap_k: Vec<u64>,
    /// Whether `snap_wk`/`snap_k` currently equal `n_wk`/`n_k`.
    snap_fresh: bool,
}

impl PartialEq for TopicCounts {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.v == other.v
            && self.n_dk == other.n_dk
            && self.n_wk == other.n_wk
            && self.n_k == other.n_k
    }
}

impl Eq for TopicCounts {}

impl TopicCounts {
    pub fn new(n_docs: usize, vocab_size: usize, n_topics: usize) -> Self {
        Self {
            k: n_topics,
            v: vocab_size,
            n_dk: vec![0; n_docs * n_topics],
            n_wk: vec![0; vocab_size * n_topics],
            n_k: vec![0; n_topics],
            snap_wk: Vec::new(),
            snap_k: Vec::new(),
            snap_fresh: false,
        }
    }

    #[inline]
    pub fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    #[inline]
    pub fn n_dk(&self, d: usize, t: usize) -> u32 {
        self.n_dk[d * self.k + t]
    }

    #[inline]
    pub fn n_wk(&self, w: u32, t: usize) -> u32 {
        self.n_wk[w as usize * self.k + t]
    }

    #[inline]
    pub fn n_k(&self, t: usize) -> u64 {
        self.n_k[t]
    }

    /// This document's `N_dk` row (length K).
    #[inline]
    pub fn doc_row(&self, d: usize) -> &[u32] {
        &self.n_dk[d * self.k..(d + 1) * self.k]
    }

    /// The full `N_wk` table, row-major `w*K + k` (e.g. to snapshot it or
    /// build a [`crate::kernel::TrainView`]).
    #[inline]
    pub fn n_wk_table(&self) -> &[u32] {
        &self.n_wk
    }

    /// The full `N_k` table.
    #[inline]
    pub fn n_k_table(&self) -> &[u64] {
        &self.n_k
    }

    /// Bring the snapshot buffers up to date with the live tables.
    ///
    /// Cheap when the snapshot is already fresh (the common case: the
    /// previous parallel sweep rolled its deltas into both buffers);
    /// otherwise performs the one full O(V·K) copy that seeds the
    /// amortization. Returns the number of `n_wk` cells copied (0 when
    /// fresh), which the scheduler surfaces as a sweep statistic.
    pub fn refresh_snapshot(&mut self) -> usize {
        if self.snap_fresh {
            return 0;
        }
        self.snap_wk.clear();
        self.snap_wk.extend_from_slice(&self.n_wk);
        self.snap_k.clear();
        self.snap_k.extend_from_slice(&self.n_k);
        self.snap_fresh = true;
        self.snap_wk.len()
    }

    /// Drop the amortized snapshot so the next
    /// [`refresh_snapshot`](Self::refresh_snapshot) performs a full clone.
    /// Used by the clone-baseline benchmarks and the amortized-vs-clone
    /// equivalence tests; never needed in normal operation.
    pub fn invalidate_snapshot(&mut self) {
        self.snap_fresh = false;
    }

    /// Whether the snapshot buffers currently mirror the live tables.
    #[inline]
    pub fn snapshot_is_fresh(&self) -> bool {
        self.snap_fresh
    }

    /// Split-borrow for one parallel sweep: the frozen
    /// `(snap_wk, snap_k)` snapshot (shared across worker threads) and
    /// the mutable `N_dk` rows (chunked per document shard). Requires a
    /// fresh snapshot — call [`refresh_snapshot`](Self::refresh_snapshot)
    /// first.
    #[inline]
    pub fn sweep_views(&mut self) -> (&[u32], &[u64], &mut [u32]) {
        // A real assert: a stale snapshot here would silently sample a
        // wrong (non-bit-identical) chain, and the check is one bool read
        // per sweep.
        assert!(self.snap_fresh, "sweep_views needs a fresh snapshot");
        (&self.snap_wk, &self.snap_k, &mut self.n_dk)
    }

    /// Move a clique's tokens into topic `topic`.
    #[inline]
    pub fn add_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        self.snap_fresh = false;
        let kt = topic as usize;
        for &w in tokens {
            self.n_wk[w as usize * self.k + kt] += 1;
        }
        let s = tokens.len() as u32;
        self.n_dk[d * self.k + kt] += s;
        self.n_k[kt] += s as u64;
    }

    /// Remove a clique's tokens from topic `topic`.
    #[inline]
    pub fn remove_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        self.snap_fresh = false;
        let kt = topic as usize;
        for &w in tokens {
            self.n_wk[w as usize * self.k + kt] -= 1;
        }
        let s = tokens.len() as u32;
        self.n_dk[d * self.k + kt] -= s;
        self.n_k[kt] -= s as u64;
    }

    /// Apply one shard's signed count delta from a parallel sweep:
    /// `delta_wk` as sparse `(row-major index, delta)` pairs (the same
    /// index may repeat), `delta_k` dense over the K topics. Integer
    /// addition commutes, so the merged state is independent of shard
    /// count and application order.
    ///
    /// When the snapshot is fresh, the delta also rolls into the snapshot
    /// buffers — this is the amortization: after the last shard of a sweep
    /// merges, `snap_wk`/`snap_k` already *are* the next sweep's snapshot,
    /// in O(nnz) instead of an O(V·K) re-clone, and bit-identical to one
    /// (integer adds are exact).
    pub fn apply_delta(&mut self, delta_wk: &[(u32, i32)], delta_k: &[i64]) {
        debug_assert_eq!(delta_k.len(), self.n_k.len());
        if self.snap_fresh {
            // Steady-state barrier merge: one pass updates both buffers.
            for &(i, d) in delta_wk {
                let next = self.n_wk[i as usize] as i64 + d as i64;
                debug_assert!(next >= 0, "n_wk went negative in merge");
                self.n_wk[i as usize] = next as u32;
                self.snap_wk[i as usize] = (self.snap_wk[i as usize] as i64 + d as i64) as u32;
            }
            for ((c, s), &d) in self.n_k.iter_mut().zip(self.snap_k.iter_mut()).zip(delta_k) {
                let next = *c as i64 + d;
                debug_assert!(next >= 0, "n_k went negative in merge");
                *c = next as u64;
                *s = (*s as i64 + d) as u64;
            }
        } else {
            for &(i, d) in delta_wk {
                let next = self.n_wk[i as usize] as i64 + d as i64;
                debug_assert!(next >= 0, "n_wk went negative in merge");
                self.n_wk[i as usize] = next as u32;
            }
            for (c, &d) in self.n_k.iter_mut().zip(delta_k) {
                let next = *c as i64 + d;
                debug_assert!(next >= 0, "n_k went negative in merge");
                *c = next as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trips() {
        let mut c = TopicCounts::new(2, 5, 3);
        c.add_group(1, &[0, 4, 4], 2);
        assert_eq!(c.n_dk(1, 2), 3);
        assert_eq!(c.n_wk(4, 2), 2);
        assert_eq!(c.n_k(2), 3);
        assert_eq!(c.doc_row(1), &[0, 0, 3]);
        c.remove_group(1, &[0, 4, 4], 2);
        assert_eq!(c, TopicCounts::new(2, 5, 3));
    }

    #[test]
    fn snapshot_rolls_forward_through_deltas_and_invalidates_on_mutation() {
        let mut c = TopicCounts::new(1, 3, 2);
        c.add_group(0, &[0, 1, 2], 0);
        assert!(!c.snapshot_is_fresh());
        // First refresh: a full copy.
        assert_eq!(c.refresh_snapshot(), 3 * 2);
        assert!(c.snapshot_is_fresh());
        {
            let (snap_wk, snap_k, _) = c.sweep_views();
            assert_eq!(snap_wk, &[1, 0, 1, 0, 1, 0]);
            assert_eq!(snap_k, &[3, 0]);
        }
        // A barrier merge rolls into both buffers: the snapshot stays
        // fresh and the next refresh costs nothing.
        c.apply_delta(&[(0, -1), (1, 1)], &[-1, 1]);
        assert!(c.snapshot_is_fresh());
        assert_eq!(c.refresh_snapshot(), 0);
        {
            let (snap_wk, snap_k, _) = c.sweep_views();
            assert_eq!(snap_wk, &[0, 1, 1, 0, 1, 0]);
            assert_eq!(snap_k, &[2, 1]);
        }
        // Sequential mutation invalidates; the refresh re-clones and the
        // result still matches the live tables exactly.
        c.add_group(0, &[1], 1);
        assert!(!c.snapshot_is_fresh());
        assert_eq!(c.refresh_snapshot(), 3 * 2);
        let live_wk = c.n_wk_table().to_vec();
        let live_k = c.n_k_table().to_vec();
        let (snap_wk, snap_k, _) = c.sweep_views();
        assert_eq!(snap_wk, &live_wk[..]);
        assert_eq!(snap_k, &live_k[..]);
    }

    #[test]
    fn equality_ignores_snapshot_buffers() {
        let mut a = TopicCounts::new(1, 2, 2);
        let mut b = a.clone();
        a.add_group(0, &[0], 0);
        b.add_group(0, &[0], 0);
        a.refresh_snapshot();
        assert_eq!(a, b, "snapshot state must not affect equality");
        a.invalidate_snapshot();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_delta_merges_signed_changes() {
        let mut c = TopicCounts::new(1, 2, 2);
        c.add_group(0, &[0, 1], 0);
        // Move word 1 from topic 0 to topic 1, expressed as a sparse
        // shard delta over the row-major (w, t) table.
        let delta_wk = vec![(2u32, -1i32), (3, 1)]; // w1:[t0, t1]
        let delta_k = vec![-1, 1];
        c.apply_delta(&delta_wk, &delta_k);
        assert_eq!(c.n_wk(1, 0), 0);
        assert_eq!(c.n_wk(1, 1), 1);
        assert_eq!(c.n_k(0), 1);
        assert_eq!(c.n_k(1), 1);
    }
}
