//! The Gibbs count state: `N_dk`, `N_wk`, `N_k` behind one type.
//!
//! [`TopicCounts`] owns the three tables every reader of the sampler state
//! goes through — the sequential sweep, the thread-sharded sweep's
//! snapshot, φ/θ point estimates, perplexity, and Minka's fixed-point
//! hyperparameter updates. Centralizing them keeps the add/remove
//! bookkeeping in one place and gives the parallel scheduler a single
//! thing to snapshot and merge.
//!
//! # Amortized snapshots
//!
//! The thread-sharded sweep samples every document against a frozen copy
//! of `N_wk`/`N_k`. Re-cloning those tables each sweep is O(V·K) — for
//! huge vocabularies that copy dominates the sweep. [`TopicCounts`]
//! therefore double-buffers: it keeps a second `snap_wk`/`snap_k` pair,
//! and [`apply_delta`](TopicCounts::apply_delta) rolls each sweep's sparse
//! `(idx, Δ)` barrier merge into *both* buffers. Because the deltas are
//! exact integers, `snapshot = previous snapshot + merged deltas` is
//! bit-identical to a fresh clone, but costs O(nnz) — proportional to how
//! many counts actually moved, independent of V·K. A full copy happens
//! only when the snapshot is stale: the first parallel sweep, or after a
//! sequential mutation ([`add_group`](TopicCounts::add_group)/
//! [`remove_group`](TopicCounts::remove_group) invalidate it).
//!
//! # Sparse nonzero indexes
//!
//! The bucketed O(active-topics) sampling kernel (`kernel.rs`,
//! `KERNEL_VERSION = 2`) iterates only the topics a word or document
//! actually uses. [`TopicCounts`] therefore maintains, alongside the dense
//! tables, a **sorted** list of nonzero topics per `N_wk` row
//! ([`word_nz`](TopicCounts::word_nz)) and per `N_dk` row
//! ([`doc_nz`](TopicCounts::doc_nz)). Every mutation path keeps them in
//! sync: `add_group`/`remove_group` on the sequential path, and the same
//! sparse `(idx, Δ)` barrier merge that rolls the snapshot forward on the
//! parallel path ([`apply_delta`](TopicCounts::apply_delta) watches the
//! 0 ↔ nonzero transitions it already computes). Sorted order makes the
//! kernel's bucket-sum iteration order canonical, which is what keeps the
//! sampled chain bit-identical across thread counts.

/// Dense count tables of a collapsed Gibbs chain over `D` documents,
/// `V` words, and `K` topics, plus the amortized sweep-snapshot buffers.
///
/// Equality compares only the live chain state (`N_dk`/`N_wk`/`N_k`);
/// the snapshot buffers are a cache and never observable.
#[derive(Debug, Clone)]
pub struct TopicCounts {
    k: usize,
    v: usize,
    /// `N_{d,k}`: tokens of doc d assigned to topic k (row-major `d*K + k`).
    pub(crate) n_dk: Vec<u32>,
    /// `N_{w,k}`: tokens of word w assigned to topic k (row-major `w*K + k`).
    pub(crate) n_wk: Vec<u32>,
    /// `N_k`: tokens assigned to topic k.
    pub(crate) n_k: Vec<u64>,
    /// Double buffer of `n_wk` for parallel sweeps (empty until the first
    /// [`refresh_snapshot`](TopicCounts::refresh_snapshot)).
    snap_wk: Vec<u32>,
    /// Double buffer of `n_k`.
    snap_k: Vec<u64>,
    /// Whether `snap_wk`/`snap_k` currently equal `n_wk`/`n_k`.
    snap_fresh: bool,
    /// Per-word sorted topics with `N_wk > 0` (the topic-word bucket's
    /// iteration set), stored *flat* at fixed capacity K per row: word
    /// `w`'s list is `nz_wk[w*K .. w*K + nz_wk_len[w]]`. A row can never
    /// exceed K entries, so the flat layout costs V·K `u16`s but turns
    /// every access into one direct index — no per-row `Vec` header to
    /// chase through a second cache line on this per-token hot path.
    /// `u16` because `K < 65536` everywhere in this crate (topics are
    /// `u16` assignments).
    nz_wk: Vec<u16>,
    /// Live lengths of the `nz_wk` rows.
    nz_wk_len: Vec<u16>,
    /// Per-document sorted topics with `N_dk > 0` (the document bucket's
    /// iteration set), flat like `nz_wk`: doc `d`'s list is
    /// `nz_dk[d*K .. d*K + nz_dk_len[d]]`.
    nz_dk: Vec<u16>,
    /// Live lengths of the `nz_dk` rows.
    nz_dk_len: Vec<u16>,
}

/// Ask the kernel to back a large table with transparent huge pages
/// (`madvise(MADV_HUGEPAGE)`). The Gibbs sweep strides `N_wk` and its
/// nonzero index at random word offsets, so with 4 KiB pages a V = 100k /
/// K = 32 model walks thousands of TLB entries per sweep — measurably
/// slower than the same tables on a handful of 2 MiB pages. Best-effort:
/// failures are ignored, and the function is a no-op off Linux/x86_64 or
/// for tables under 2 MiB. Issued as a raw syscall because this crate
/// deliberately has no libc dependency.
fn advise_huge<T>(table: &[T]) {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let len = std::mem::size_of_val(table);
        if len < 2 << 20 {
            return;
        }
        // Round inward to page boundaries; madvise rejects unaligned
        // starts, and the partial head/tail pages can't be huge anyway.
        let page = 4096usize;
        let start = (table.as_ptr() as usize).next_multiple_of(page);
        let end = (table.as_ptr() as usize + len) & !(page - 1);
        if end <= start {
            return;
        }
        unsafe {
            let ret: isize;
            std::arch::asm!(
                "syscall",
                inlateout("rax") 28isize => ret, // SYS_madvise
                in("rdi") start,
                in("rsi") end - start,
                in("rdx") 14usize, // MADV_HUGEPAGE
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            let _ = ret; // best-effort: EINVAL on THP-less kernels is fine
        }
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    let _ = table;
}

/// Insert `t` into a sorted nonzero-topic list (no-op if present).
#[inline]
pub fn nz_insert(list: &mut Vec<u16>, t: u16) {
    if let Err(pos) = list.binary_search(&t) {
        list.insert(pos, t);
    }
}

/// Remove `t` from a sorted nonzero-topic list (no-op if absent).
#[inline]
pub fn nz_remove(list: &mut Vec<u16>, t: u16) {
    if let Ok(pos) = list.binary_search(&t) {
        list.remove(pos);
    }
}

/// Insert `t` into a fixed-capacity sorted row (`row[..*len]` live);
/// no-op if present. The caller guarantees capacity: a topic list holds
/// at most K entries and the row is K wide.
#[inline]
pub fn nz_row_insert(row: &mut [u16], len: &mut u16, t: u16) {
    let n = *len as usize;
    if let Err(pos) = row[..n].binary_search(&t) {
        row.copy_within(pos..n, pos + 1);
        row[pos] = t;
        *len += 1;
    }
}

/// Remove `t` from a fixed-capacity sorted row (no-op if absent).
#[inline]
pub fn nz_row_remove(row: &mut [u16], len: &mut u16, t: u16) {
    let n = *len as usize;
    if let Ok(pos) = row[..n].binary_search(&t) {
        row.copy_within(pos + 1..n, pos);
        *len -= 1;
    }
}

/// Split-borrow of [`TopicCounts`] for one parallel sweep: the frozen
/// snapshot plus the sparse indexes (`nz_wk` shared for the gather,
/// `nz_dk` chunked mutably per document shard alongside `n_dk`). The nz
/// indexes come as flat fixed-capacity-K rows plus their length arrays.
pub struct SweepViews<'a> {
    pub snap_wk: &'a [u32],
    pub snap_k: &'a [u64],
    pub n_dk: &'a mut [u32],
    pub nz_wk: &'a [u16],
    pub nz_wk_len: &'a [u16],
    pub nz_dk: &'a mut [u16],
    pub nz_dk_len: &'a mut [u16],
}

impl PartialEq for TopicCounts {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.v == other.v
            && self.n_dk == other.n_dk
            && self.n_wk == other.n_wk
            && self.n_k == other.n_k
    }
}

impl Eq for TopicCounts {}

impl TopicCounts {
    pub fn new(n_docs: usize, vocab_size: usize, n_topics: usize) -> Self {
        let counts = Self {
            k: n_topics,
            v: vocab_size,
            n_dk: vec![0; n_docs * n_topics],
            n_wk: vec![0; vocab_size * n_topics],
            n_k: vec![0; n_topics],
            snap_wk: Vec::new(),
            snap_k: Vec::new(),
            snap_fresh: false,
            nz_wk: vec![0; vocab_size * n_topics],
            nz_wk_len: vec![0; vocab_size],
            nz_dk: vec![0; n_docs * n_topics],
            nz_dk_len: vec![0; n_docs],
        };
        // The per-word tables are the sweep's random-access working set.
        advise_huge(&counts.n_wk);
        advise_huge(&counts.nz_wk);
        counts
    }

    #[inline]
    pub fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    #[inline]
    pub fn n_dk(&self, d: usize, t: usize) -> u32 {
        self.n_dk[d * self.k + t]
    }

    #[inline]
    pub fn n_wk(&self, w: u32, t: usize) -> u32 {
        self.n_wk[w as usize * self.k + t]
    }

    #[inline]
    pub fn n_k(&self, t: usize) -> u64 {
        self.n_k[t]
    }

    /// This document's `N_dk` row (length K).
    #[inline]
    pub fn doc_row(&self, d: usize) -> &[u32] {
        &self.n_dk[d * self.k..(d + 1) * self.k]
    }

    /// The full `N_wk` table, row-major `w*K + k` (e.g. to snapshot it or
    /// build a [`crate::kernel::TrainView`]).
    #[inline]
    pub fn n_wk_table(&self) -> &[u32] {
        &self.n_wk
    }

    /// The full `N_k` table.
    #[inline]
    pub fn n_k_table(&self) -> &[u64] {
        &self.n_k
    }

    /// This word's `N_wk` row (length K).
    #[inline]
    pub fn word_row(&self, w: u32) -> &[u32] {
        &self.n_wk[w as usize * self.k..(w as usize + 1) * self.k]
    }

    /// Hint the hardware prefetcher at word `w`'s `N_wk` row and nonzero
    /// row. The sweep visits words in corpus order — effectively random
    /// over V — so the next group's rows are almost never resident;
    /// issuing the loads one group ahead hides most of the miss latency
    /// for both kernels. A no-op off x86_64.
    #[inline]
    pub fn prefetch_word(&self, w: u32) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = w as usize * self.k;
            let row = self.n_wk.as_ptr().add(base) as *const i8;
            _mm_prefetch(row, _MM_HINT_T0);
            if self.k > 16 {
                // A u32 row longer than one cache line: touch its tail too
                // (the dense kernel reads all K entries).
                _mm_prefetch(row.add(self.k * 4 - 1), _MM_HINT_T0);
            }
            _mm_prefetch(self.nz_wk.as_ptr().add(base) as *const i8, _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = w;
    }

    /// Sorted topics with `N_wk > 0` for word `w`.
    #[inline]
    pub fn word_nz(&self, w: u32) -> &[u16] {
        let base = w as usize * self.k;
        &self.nz_wk[base..base + self.nz_wk_len[w as usize] as usize]
    }

    /// Sorted topics with `N_dk > 0` for document `d`.
    #[inline]
    pub fn doc_nz(&self, d: usize) -> &[u16] {
        let base = d * self.k;
        &self.nz_dk[base..base + self.nz_dk_len[d] as usize]
    }

    /// Check the sparse nonzero indexes against the dense tables: every
    /// list sorted, and `t ∈ list ⇔ count > 0`. O(D·K + V·K); test/debug
    /// aid for the mutation paths that maintain the lists incrementally.
    pub fn validate_nz(&self) -> Result<(), String> {
        let check = |label: &str, row: &[u32], nz: &[u16]| -> Result<(), String> {
            if !nz.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("{label}: nz list not strictly sorted: {nz:?}"));
            }
            for (t, &count) in row.iter().enumerate() {
                let listed = nz.binary_search(&(t as u16)).is_ok();
                if listed != (count > 0) {
                    return Err(format!(
                        "{label}: topic {t} count {count} but listed={listed}"
                    ));
                }
            }
            Ok(())
        };
        for w in 0..self.v {
            check(
                &format!("word {w}"),
                &self.n_wk[w * self.k..(w + 1) * self.k],
                self.word_nz(w as u32),
            )?;
        }
        for d in 0..self.nz_dk_len.len() {
            check(
                &format!("doc {d}"),
                &self.n_dk[d * self.k..(d + 1) * self.k],
                self.doc_nz(d),
            )?;
        }
        Ok(())
    }

    /// Bring the snapshot buffers up to date with the live tables.
    ///
    /// Cheap when the snapshot is already fresh (the common case: the
    /// previous parallel sweep rolled its deltas into both buffers);
    /// otherwise performs the one full O(V·K) copy that seeds the
    /// amortization. Returns the number of `n_wk` cells copied (0 when
    /// fresh), which the scheduler surfaces as a sweep statistic.
    pub fn refresh_snapshot(&mut self) -> usize {
        if self.snap_fresh {
            return 0;
        }
        self.snap_wk.clear();
        let advise = self.snap_wk.capacity() < self.n_wk.len();
        self.snap_wk.reserve_exact(self.n_wk.len());
        if advise {
            advise_huge(self.snap_wk.spare_capacity_mut());
        }
        self.snap_wk.extend_from_slice(&self.n_wk);
        self.snap_k.clear();
        self.snap_k.extend_from_slice(&self.n_k);
        self.snap_fresh = true;
        self.snap_wk.len()
    }

    /// Drop the amortized snapshot so the next
    /// [`refresh_snapshot`](Self::refresh_snapshot) performs a full clone.
    /// Used by the clone-baseline benchmarks and the amortized-vs-clone
    /// equivalence tests; never needed in normal operation.
    pub fn invalidate_snapshot(&mut self) {
        self.snap_fresh = false;
    }

    /// Whether the snapshot buffers currently mirror the live tables.
    #[inline]
    pub fn snapshot_is_fresh(&self) -> bool {
        self.snap_fresh
    }

    /// Split-borrow for one parallel sweep: the frozen
    /// `(snap_wk, snap_k)` snapshot (shared across worker threads), the
    /// mutable `N_dk` rows (chunked per document shard), and the sparse
    /// nonzero indexes (`nz_wk` shared, `nz_dk` chunked like `n_dk`).
    /// Requires a fresh snapshot — call
    /// [`refresh_snapshot`](Self::refresh_snapshot) first.
    #[inline]
    pub fn sweep_views(&mut self) -> SweepViews<'_> {
        // A real assert: a stale snapshot here would silently sample a
        // wrong (non-bit-identical) chain, and the check is one bool read
        // per sweep.
        assert!(self.snap_fresh, "sweep_views needs a fresh snapshot");
        SweepViews {
            snap_wk: &self.snap_wk,
            snap_k: &self.snap_k,
            n_dk: &mut self.n_dk,
            nz_wk: &self.nz_wk,
            nz_wk_len: &self.nz_wk_len,
            nz_dk: &mut self.nz_dk,
            nz_dk_len: &mut self.nz_dk_len,
        }
    }

    /// Move a clique's tokens into topic `topic`.
    #[inline]
    pub fn add_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        self.snap_fresh = false;
        let kt = topic as usize;
        for &w in tokens {
            let base = w as usize * self.k;
            let cell = &mut self.n_wk[base + kt];
            if *cell == 0 {
                nz_row_insert(
                    &mut self.nz_wk[base..base + self.k],
                    &mut self.nz_wk_len[w as usize],
                    topic,
                );
            }
            *cell += 1;
        }
        let s = tokens.len() as u32;
        let base = d * self.k;
        let cell = &mut self.n_dk[base + kt];
        if *cell == 0 {
            nz_row_insert(
                &mut self.nz_dk[base..base + self.k],
                &mut self.nz_dk_len[d],
                topic,
            );
        }
        *cell += s;
        self.n_k[kt] += s as u64;
    }

    /// Remove a clique's tokens from topic `topic`.
    #[inline]
    pub fn remove_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        self.snap_fresh = false;
        let kt = topic as usize;
        for &w in tokens {
            let base = w as usize * self.k;
            let cell = &mut self.n_wk[base + kt];
            *cell -= 1;
            if *cell == 0 {
                nz_row_remove(
                    &mut self.nz_wk[base..base + self.k],
                    &mut self.nz_wk_len[w as usize],
                    topic,
                );
            }
        }
        let s = tokens.len() as u32;
        let base = d * self.k;
        let cell = &mut self.n_dk[base + kt];
        *cell -= s;
        if *cell == 0 {
            nz_row_remove(
                &mut self.nz_dk[base..base + self.k],
                &mut self.nz_dk_len[d],
                topic,
            );
        }
        self.n_k[kt] -= s as u64;
    }

    /// Apply one shard's signed count delta from a parallel sweep:
    /// `delta_wk` as sparse `(row-major index, delta)` pairs (the same
    /// index may repeat), `delta_k` dense over the K topics. Integer
    /// addition commutes, so the merged state is independent of shard
    /// count and application order.
    ///
    /// When the snapshot is fresh, the delta also rolls into the snapshot
    /// buffers — this is the amortization: after the last shard of a sweep
    /// merges, `snap_wk`/`snap_k` already *are* the next sweep's snapshot,
    /// in O(nnz) instead of an O(V·K) re-clone, and bit-identical to one
    /// (integer adds are exact).
    pub fn apply_delta(&mut self, delta_wk: &[(u32, i32)], delta_k: &[i64]) {
        debug_assert_eq!(delta_k.len(), self.n_k.len());
        if self.snap_fresh {
            // Steady-state barrier merge: one pass updates both buffers
            // and the nonzero index (the same index may repeat across
            // shards, so 0 ↔ nonzero transitions are watched per update).
            for &(i, d) in delta_wk {
                let prev = self.n_wk[i as usize];
                let next = prev as i64 + d as i64;
                debug_assert!(next >= 0, "n_wk went negative in merge");
                self.n_wk[i as usize] = next as u32;
                self.snap_wk[i as usize] = (self.snap_wk[i as usize] as i64 + d as i64) as u32;
                let (w, t) = (i as usize / self.k, (i as usize % self.k) as u16);
                let base = w * self.k;
                if prev == 0 && next > 0 {
                    nz_row_insert(
                        &mut self.nz_wk[base..base + self.k],
                        &mut self.nz_wk_len[w],
                        t,
                    );
                } else if prev > 0 && next == 0 {
                    nz_row_remove(
                        &mut self.nz_wk[base..base + self.k],
                        &mut self.nz_wk_len[w],
                        t,
                    );
                }
            }
            for ((c, s), &d) in self.n_k.iter_mut().zip(self.snap_k.iter_mut()).zip(delta_k) {
                let next = *c as i64 + d;
                debug_assert!(next >= 0, "n_k went negative in merge");
                *c = next as u64;
                *s = (*s as i64 + d) as u64;
            }
        } else {
            for &(i, d) in delta_wk {
                let prev = self.n_wk[i as usize];
                let next = prev as i64 + d as i64;
                debug_assert!(next >= 0, "n_wk went negative in merge");
                self.n_wk[i as usize] = next as u32;
                let (w, t) = (i as usize / self.k, (i as usize % self.k) as u16);
                let base = w * self.k;
                if prev == 0 && next > 0 {
                    nz_row_insert(
                        &mut self.nz_wk[base..base + self.k],
                        &mut self.nz_wk_len[w],
                        t,
                    );
                } else if prev > 0 && next == 0 {
                    nz_row_remove(
                        &mut self.nz_wk[base..base + self.k],
                        &mut self.nz_wk_len[w],
                        t,
                    );
                }
            }
            for (c, &d) in self.n_k.iter_mut().zip(delta_k) {
                let next = *c as i64 + d;
                debug_assert!(next >= 0, "n_k went negative in merge");
                *c = next as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trips() {
        let mut c = TopicCounts::new(2, 5, 3);
        c.add_group(1, &[0, 4, 4], 2);
        assert_eq!(c.n_dk(1, 2), 3);
        assert_eq!(c.n_wk(4, 2), 2);
        assert_eq!(c.n_k(2), 3);
        assert_eq!(c.doc_row(1), &[0, 0, 3]);
        c.remove_group(1, &[0, 4, 4], 2);
        assert_eq!(c, TopicCounts::new(2, 5, 3));
    }

    #[test]
    fn snapshot_rolls_forward_through_deltas_and_invalidates_on_mutation() {
        let mut c = TopicCounts::new(1, 3, 2);
        c.add_group(0, &[0, 1, 2], 0);
        assert!(!c.snapshot_is_fresh());
        // First refresh: a full copy.
        assert_eq!(c.refresh_snapshot(), 3 * 2);
        assert!(c.snapshot_is_fresh());
        {
            let views = c.sweep_views();
            assert_eq!(views.snap_wk, &[1, 0, 1, 0, 1, 0]);
            assert_eq!(views.snap_k, &[3, 0]);
        }
        // A barrier merge rolls into both buffers: the snapshot stays
        // fresh and the next refresh costs nothing.
        c.apply_delta(&[(0, -1), (1, 1)], &[-1, 1]);
        assert!(c.snapshot_is_fresh());
        assert_eq!(c.refresh_snapshot(), 0);
        {
            let views = c.sweep_views();
            assert_eq!(views.snap_wk, &[0, 1, 1, 0, 1, 0]);
            assert_eq!(views.snap_k, &[2, 1]);
        }
        // Sequential mutation invalidates; the refresh re-clones and the
        // result still matches the live tables exactly.
        c.add_group(0, &[1], 1);
        assert!(!c.snapshot_is_fresh());
        assert_eq!(c.refresh_snapshot(), 3 * 2);
        let live_wk = c.n_wk_table().to_vec();
        let live_k = c.n_k_table().to_vec();
        let views = c.sweep_views();
        assert_eq!(views.snap_wk, &live_wk[..]);
        assert_eq!(views.snap_k, &live_k[..]);
    }

    #[test]
    fn equality_ignores_snapshot_buffers() {
        let mut a = TopicCounts::new(1, 2, 2);
        let mut b = a.clone();
        a.add_group(0, &[0], 0);
        b.add_group(0, &[0], 0);
        a.refresh_snapshot();
        assert_eq!(a, b, "snapshot state must not affect equality");
        a.invalidate_snapshot();
        assert_eq!(a, b);
    }

    #[test]
    fn nz_indexes_track_group_mutations() {
        let mut c = TopicCounts::new(2, 5, 4);
        assert!(c.word_nz(4).is_empty());
        c.add_group(1, &[0, 4, 4], 2);
        c.add_group(1, &[4], 0);
        assert_eq!(c.word_nz(4), &[0, 2]);
        assert_eq!(c.doc_nz(1), &[0, 2]);
        assert!(c.doc_nz(0).is_empty());
        c.validate_nz().unwrap();
        c.remove_group(1, &[4], 0);
        assert_eq!(c.word_nz(4), &[2]);
        assert_eq!(c.doc_nz(1), &[2]);
        c.remove_group(1, &[0, 4, 4], 2);
        assert!(c.word_nz(4).is_empty());
        assert!(c.doc_nz(1).is_empty());
        c.validate_nz().unwrap();
    }

    #[test]
    fn nz_index_survives_repeated_delta_indices() {
        let mut c = TopicCounts::new(1, 2, 2);
        c.add_group(0, &[0], 0);
        c.refresh_snapshot();
        // Two shards both touched cell (w=0, t=0): 1 → 0 → 1 across the
        // merge. The nz list must see both transitions, not just the net.
        c.apply_delta(&[(0, -1), (0, 1)], &[0, 0]);
        assert_eq!(c.word_nz(0), &[0]);
        c.validate_nz().unwrap();
        // Net removal and net insertion through the merged path, with the
        // snapshot both fresh and stale.
        c.apply_delta(&[(0, -1), (1, 1)], &[-1, 1]);
        assert_eq!(c.word_nz(0), &[1]);
        c.invalidate_snapshot();
        c.apply_delta(&[(1, -1), (2, 1)], &[1, -1]);
        assert!(c.word_nz(0).is_empty());
        assert_eq!(c.word_nz(1), &[0]);
        c.validate_nz().unwrap();
    }

    #[test]
    fn apply_delta_merges_signed_changes() {
        let mut c = TopicCounts::new(1, 2, 2);
        c.add_group(0, &[0, 1], 0);
        // Move word 1 from topic 0 to topic 1, expressed as a sparse
        // shard delta over the row-major (w, t) table.
        let delta_wk = vec![(2u32, -1i32), (3, 1)]; // w1:[t0, t1]
        let delta_k = vec![-1, 1];
        c.apply_delta(&delta_wk, &delta_k);
        assert_eq!(c.n_wk(1, 0), 0);
        assert_eq!(c.n_wk(1, 1), 1);
        assert_eq!(c.n_k(0), 1);
        assert_eq!(c.n_k(1), 1);
    }
}
