//! The Gibbs count state: `N_dk`, `N_wk`, `N_k` behind one type.
//!
//! [`TopicCounts`] owns the three tables every reader of the sampler state
//! goes through — the sequential sweep, the thread-sharded sweep's
//! snapshot, φ/θ point estimates, perplexity, and Minka's fixed-point
//! hyperparameter updates. Centralizing them keeps the add/remove
//! bookkeeping in one place and gives the parallel scheduler a single
//! thing to snapshot and merge.

/// Dense count tables of a collapsed Gibbs chain over `D` documents,
/// `V` words, and `K` topics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicCounts {
    k: usize,
    v: usize,
    /// `N_{d,k}`: tokens of doc d assigned to topic k (row-major `d*K + k`).
    pub(crate) n_dk: Vec<u32>,
    /// `N_{w,k}`: tokens of word w assigned to topic k (row-major `w*K + k`).
    pub(crate) n_wk: Vec<u32>,
    /// `N_k`: tokens assigned to topic k.
    pub(crate) n_k: Vec<u64>,
}

impl TopicCounts {
    pub fn new(n_docs: usize, vocab_size: usize, n_topics: usize) -> Self {
        Self {
            k: n_topics,
            v: vocab_size,
            n_dk: vec![0; n_docs * n_topics],
            n_wk: vec![0; vocab_size * n_topics],
            n_k: vec![0; n_topics],
        }
    }

    #[inline]
    pub fn n_topics(&self) -> usize {
        self.k
    }

    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    #[inline]
    pub fn n_dk(&self, d: usize, t: usize) -> u32 {
        self.n_dk[d * self.k + t]
    }

    #[inline]
    pub fn n_wk(&self, w: u32, t: usize) -> u32 {
        self.n_wk[w as usize * self.k + t]
    }

    #[inline]
    pub fn n_k(&self, t: usize) -> u64 {
        self.n_k[t]
    }

    /// This document's `N_dk` row (length K).
    #[inline]
    pub fn doc_row(&self, d: usize) -> &[u32] {
        &self.n_dk[d * self.k..(d + 1) * self.k]
    }

    /// The full `N_wk` table, row-major `w*K + k` (e.g. to snapshot it or
    /// build a [`crate::kernel::TrainView`]).
    #[inline]
    pub fn n_wk_table(&self) -> &[u32] {
        &self.n_wk
    }

    /// The full `N_k` table.
    #[inline]
    pub fn n_k_table(&self) -> &[u64] {
        &self.n_k
    }

    /// All `N_dk` rows, mutable (row-major `d*K + k`) — the parallel
    /// scheduler chunks this per document shard; rows are exclusively
    /// owned by whichever shard holds the document.
    #[inline]
    pub fn doc_rows_mut(&mut self) -> &mut [u32] {
        &mut self.n_dk
    }

    /// Move a clique's tokens into topic `topic`.
    #[inline]
    pub fn add_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        let kt = topic as usize;
        for &w in tokens {
            self.n_wk[w as usize * self.k + kt] += 1;
        }
        let s = tokens.len() as u32;
        self.n_dk[d * self.k + kt] += s;
        self.n_k[kt] += s as u64;
    }

    /// Remove a clique's tokens from topic `topic`.
    #[inline]
    pub fn remove_group(&mut self, d: usize, tokens: &[u32], topic: u16) {
        let kt = topic as usize;
        for &w in tokens {
            self.n_wk[w as usize * self.k + kt] -= 1;
        }
        let s = tokens.len() as u32;
        self.n_dk[d * self.k + kt] -= s;
        self.n_k[kt] -= s as u64;
    }

    /// Apply one shard's signed count delta from a parallel sweep:
    /// `delta_wk` as sparse `(row-major index, delta)` pairs (the same
    /// index may repeat), `delta_k` dense over the K topics. Integer
    /// addition commutes, so the merged state is independent of shard
    /// count and application order.
    pub fn apply_delta(&mut self, delta_wk: &[(u32, i32)], delta_k: &[i64]) {
        debug_assert_eq!(delta_k.len(), self.n_k.len());
        for &(i, d) in delta_wk {
            let next = self.n_wk[i as usize] as i64 + d as i64;
            debug_assert!(next >= 0, "n_wk went negative in merge");
            self.n_wk[i as usize] = next as u32;
        }
        for (c, &d) in self.n_k.iter_mut().zip(delta_k) {
            let next = *c as i64 + d;
            debug_assert!(next >= 0, "n_k went negative in merge");
            *c = next as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trips() {
        let mut c = TopicCounts::new(2, 5, 3);
        c.add_group(1, &[0, 4, 4], 2);
        assert_eq!(c.n_dk(1, 2), 3);
        assert_eq!(c.n_wk(4, 2), 2);
        assert_eq!(c.n_k(2), 3);
        assert_eq!(c.doc_row(1), &[0, 0, 3]);
        c.remove_group(1, &[0, 4, 4], 2);
        assert_eq!(c, TopicCounts::new(2, 5, 3));
    }

    #[test]
    fn apply_delta_merges_signed_changes() {
        let mut c = TopicCounts::new(1, 2, 2);
        c.add_group(0, &[0, 1], 0);
        // Move word 1 from topic 0 to topic 1, expressed as a sparse
        // shard delta over the row-major (w, t) table.
        let delta_wk = vec![(2u32, -1i32), (3, 1)]; // w1:[t0, t1]
        let delta_k = vec![-1, 1];
        c.apply_delta(&delta_wk, &delta_k);
        assert_eq!(c.n_wk(1, 0), 0);
        assert_eq!(c.n_wk(1, 1), 1);
        assert_eq!(c.n_k(0), 1);
        assert_eq!(c.n_k(1), 1);
    }
}
