//! The collocation significance score (paper §4.2.1, Eq. 1).
//!
//! Null hypothesis h0: the corpus is a sequence of `L` independent Bernoulli
//! trials, so the count of the concatenation `P1 ⊕ P2` is binomial with mean
//! `μ0 = L · p(P1) · p(P2)`, approximately normal for large `L`. The sample
//! variance is estimated by the observed count itself (the paper's
//! `σ² ≈ f(P1 ⊕ P2)`), giving
//!
//! ```text
//! sig(P1, P2) ≈ (f(P1 ⊕ P2) − μ0) / sqrt(f(P1 ⊕ P2))
//! ```
//!
//! — the number of standard deviations the observed co-occurrence sits above
//! independence; a generalization of the t-statistic used to find dependent
//! bigrams. Crucially the null treats *each existing phrase as one unit*,
//! which is what defeats the "free-rider" problem for long phrases.

/// Significance of merging two adjacent phrases (Eq. 1).
///
/// * `f12` — corpus count of the concatenated phrase `P1 ⊕ P2`.
/// * `f1`, `f2` — corpus counts of the constituents.
/// * `total_tokens` — `L`, the corpus token count.
///
/// Returns `f64::NEG_INFINITY` when the merged phrase was never observed
/// (or the corpus is empty): such a pair must never win a merge.
///
/// ```
/// use topmine_phrase::significance;
/// // "strong tea": co-occurs far beyond chance in a 1M-token corpus.
/// let strong = significance(180, 2000, 2200, 1_000_000);
/// // "powerful tea": co-occurs at chance level.
/// let powerful = significance(4, 1900, 2200, 1_000_000);
/// assert!(strong > 10.0 && powerful < 1.0);
/// ```
pub fn significance(f12: u64, f1: u64, f2: u64, total_tokens: u64) -> f64 {
    if f12 == 0 || total_tokens == 0 {
        return f64::NEG_INFINITY;
    }
    let l = total_tokens as f64;
    let p1 = f1 as f64 / l;
    let p2 = f2 as f64 / l;
    let mu0 = l * p1 * p2;
    let observed = f12 as f64;
    (observed - mu0) / observed.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_collocation_scores_high() {
        // "support vector": both words appear 100 times in a 100k corpus and
        // *always* together -> expected-by-chance is 0.1, observed 100.
        let sig = significance(100, 100, 100, 100_000);
        assert!(sig > 9.0, "sig = {sig}");
    }

    #[test]
    fn independent_pair_scores_near_zero() {
        // Observed exactly matches the independence expectation:
        // mu0 = L * (1000/L) * (1000/L) = 10 with L = 100k -> sig = 0.
        let sig = significance(10, 1000, 1000, 100_000);
        assert!(sig.abs() < 1e-9, "sig = {sig}");
    }

    #[test]
    fn under_represented_pair_is_negative() {
        // Co-occurring less than chance ("powerful tea" in the paper's
        // strong-tea/powerful-tea example).
        let sig = significance(2, 2000, 2000, 100_000);
        assert!(sig < 0.0, "sig = {sig}");
    }

    #[test]
    fn unseen_merge_is_never_selected() {
        assert_eq!(significance(0, 50, 50, 1000), f64::NEG_INFINITY);
        assert_eq!(significance(5, 5, 5, 0), f64::NEG_INFINITY);
    }

    #[test]
    fn monotone_in_observed_count() {
        // With constituents fixed, more co-occurrence is more significant.
        let l = 1_000_000;
        let mut prev = f64::NEG_INFINITY;
        for f12 in [1u64, 5, 25, 125, 625] {
            let s = significance(f12, 10_000, 10_000, l);
            assert!(s > prev, "not monotone at f12={f12}: {s} <= {prev}");
            prev = s;
        }
    }

    #[test]
    fn matches_hand_computation() {
        // f12=9, f1=30, f2=60, L=1800: mu0 = 1800*(30/1800)*(60/1800) = 1.0
        // sig = (9-1)/3 = 8/3.
        let s = significance(9, 30, 60, 1800);
        assert!((s - 8.0 / 3.0).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn free_rider_is_penalized_relative_to_true_collocation() {
        // A genuine 2-phrase collocation [AB][C] where ABC almost always
        // co-occur vs. a free-rider where C is common everywhere and ABC
        // co-occurrence is only what chance predicts.
        let l = 1_000_000;
        let genuine = significance(500, 600, 700, l);
        let mu_matched = (600.0 * 50_000.0 / l as f64) as u64; // = 30
        let free_rider = significance(mu_matched, 600, 50_000, l);
        assert!(
            genuine > 5.0 * free_rider.max(0.1),
            "genuine={genuine} free={free_rider}"
        );
    }
}

/// Pointwise mutual information of an adjacent pair, `ln(p12 / (p1 p2))` —
/// the classic collocation measure Eq. 1 is compared against in the
/// ablations. PMI normalizes away the observed count entirely, so a pair
/// seen twice can outscore one seen a thousand times; the paper's
/// significance score keeps the count in the numerator (deviation measured
/// in standard deviations), which is what suppresses rare-coincidence and
/// free-rider merges.
pub fn significance_pmi(f12: u64, f1: u64, f2: u64, total_tokens: u64) -> f64 {
    if f12 == 0 || f1 == 0 || f2 == 0 || total_tokens == 0 {
        return f64::NEG_INFINITY;
    }
    let l = total_tokens as f64;
    ((f12 as f64 / l) / ((f1 as f64 / l) * (f2 as f64 / l))).ln()
}

#[cfg(test)]
mod pmi_tests {
    use super::*;

    #[test]
    fn pmi_favors_rare_coincidences_where_sig_does_not() {
        let l = 1_000_000;
        // A pair seen twice, components seen twice: PMI is enormous.
        let rare_pmi = significance_pmi(2, 2, 2, l);
        let common_pmi = significance_pmi(500, 600, 700, l);
        assert!(rare_pmi > common_pmi);
        // Eq. 1 ranks them the other way: evidence matters.
        let rare_sig = significance(2, 2, 2, l);
        let common_sig = significance(500, 600, 700, l);
        assert!(common_sig > rare_sig);
    }

    #[test]
    fn pmi_zero_for_independence() {
        // f12 exactly matches chance: ln(1) = 0.
        let pmi = significance_pmi(10, 1000, 10_000, 1_000_000);
        assert!(pmi.abs() < 1e-9, "pmi = {pmi}");
    }

    #[test]
    fn pmi_degenerate_inputs() {
        assert_eq!(significance_pmi(0, 5, 5, 100), f64::NEG_INFINITY);
        assert_eq!(significance_pmi(5, 0, 5, 100), f64::NEG_INFINITY);
        assert_eq!(significance_pmi(5, 5, 5, 0), f64::NEG_INFINITY);
    }
}
