//! Open-addressing `u64 → u64` table for prefix-id candidate counting.
//!
//! The Algorithm 1 hot loop increments one counter per window occurrence.
//! A general-purpose `HashMap<Box<[u32]>, u64>` pays for that with a heap
//! allocation per *probe miss*, variable-length hashing per probe, and
//! pointer-chasing comparisons. Candidates in the prefix-id scheme are a
//! single packed `u64` (`prefix_id << 32 | next_word`), so the table below
//! is all a level needs: linear probing over two flat arrays, Fibonacci
//! hashing (one multiply), and a `clear()` that keeps capacity so the same
//! scratch table serves every level of the mine without reallocating.
//!
//! `u64::MAX` is the reserved empty-slot sentinel. Packed candidate keys
//! can never collide with it: the miner asserts both the vocabulary size
//! and every level's survivor count stay below `u32::MAX`, so the low half
//! of a key is at most `u32::MAX - 1` — a real key is never all-ones.

/// Reserved key marking an empty slot.
pub const EMPTY_KEY: u64 = u64::MAX;

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fibonacci hash of a packed key; also used to shard keys deterministically
/// across merge workers (any function of the key alone works — it just has
/// to be independent of which thread counted the occurrence).
#[inline]
pub fn fib_hash(key: u64) -> u64 {
    key.wrapping_mul(FIB)
}

/// Flat linear-probe `u64 → u64` map with a reserved [`EMPTY_KEY`] sentinel.
#[derive(Debug, Clone)]
pub struct U64Map {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    /// `64 - log2(capacity)`: Fibonacci hashing takes the top bits.
    shift: u32,
}

impl Default for U64Map {
    fn default() -> Self {
        Self::new()
    }
}

impl U64Map {
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// A table that holds `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY_KEY; cap],
            vals: vec![0; cap],
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count (power of two).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Forget all entries but keep the allocation.
    pub fn clear(&mut self) {
        if self.len != 0 {
            self.keys.fill(EMPTY_KEY);
            self.len = 0;
        }
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        (fib_hash(key) >> self.shift) as usize
    }

    /// `map[key] += delta`, inserting at `delta` if absent.
    #[inline]
    pub fn add(&mut self, key: u64, delta: u64) {
        debug_assert_ne!(key, EMPTY_KEY, "EMPTY_KEY is reserved");
        // Grow at 7/8 load; checked up front so the probe loop below always
        // finds an empty slot.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] += delta;
                return;
            }
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = delta;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// `map[key] = val`, overwriting.
    #[inline]
    pub fn set(&mut self, key: u64, val: u64) {
        debug_assert_ne!(key, EMPTY_KEY, "EMPTY_KEY is reserved");
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.home_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = val;
                return;
            }
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mask = self.keys.len() - 1;
        let mut i = self.home_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// All occupied `(key, value)` pairs, in table order (not key order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY_KEY {
                continue;
            }
            let mut i = self.home_slot(k);
            while self.keys[i] != EMPTY_KEY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn add_get_roundtrip() {
        let mut m = U64Map::new();
        m.add(3, 1);
        m.add(3, 2);
        m.add(9, 5);
        assert_eq!(m.get(3), Some(3));
        assert_eq!(m.get(9), Some(5));
        assert_eq!(m.get(4), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_overwrites() {
        let mut m = U64Map::new();
        m.set(7, 1);
        m.set(7, 42);
        assert_eq!(m.get(7), Some(42));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = U64Map::new();
        for k in 0..1000u64 {
            m.add(k, k);
        }
        let cap = m.capacity();
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(5), None);
        m.add(5, 9);
        assert_eq!(m.get(5), Some(9));
    }

    #[test]
    fn zero_key_works() {
        let mut m = U64Map::new();
        m.add(0, 4);
        assert_eq!(m.get(0), Some(4));
    }

    #[test]
    fn grows_and_matches_std_hashmap() {
        let mut m = U64Map::with_capacity(4);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random keys, including clustered ones that
        // stress linear probing.
        let mut x = 0x1234_5678u64;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = if i % 3 == 0 { i / 7 } else { x >> 16 };
            m.add(key, 1 + i % 5);
            *reference.entry(key).or_insert(0) += 1 + i % 5;
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v), "key {k}");
        }
        let collected: HashMap<u64, u64> = m.iter().collect();
        assert_eq!(collected, reference);
    }
}
