//! Bottom-up phrase construction — the paper's Algorithm 2.
//!
//! Each punctuation chunk starts as a sequence of single-token phrase
//! instances. A max-heap keyed by the significance score (Eq. 1) repeatedly
//! selects the adjacent pair whose merge is most significant; the pair is
//! merged into one phrase instance and the heap is updated with the new
//! instance's left and right neighbors. Construction stops when the best
//! candidate falls below the threshold `α` (the dashed line in the paper's
//! Figure 1) or everything merged into one phrase. The surviving instances
//! form a partition of the chunk — the "bag of phrases".
//!
//! Because a merged phrase is treated as *one unit* in later significance
//! computations, long phrases must justify themselves against their two
//! constituent sub-phrases (not against all their unigrams), which is the
//! paper's answer to the "free-rider" problem.
//!
//! Complexity: each chunk of length `m` performs at most `m−1` merges, each
//! `O(log m)` heap work (lazy deletion via version stamps), matching the
//! paper's `O(log N_d)` per-merge claim.

use crate::counter::PhraseCounts;
use crate::significance::significance;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use topmine_corpus::Document;

/// One recorded merge (for the Figure 1 dendrogram and debugging).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStep {
    /// 0-based merge iteration within the chunk.
    pub iteration: usize,
    /// Chunk-relative `[start, end)` of the left phrase instance.
    pub left: (u32, u32),
    /// Chunk-relative `[start, end)` of the right phrase instance.
    pub right: (u32, u32),
    /// Significance of this merge at the time it was taken.
    pub significance: f64,
}

/// The sequence of merges performed on one chunk.
pub type MergeTrace = Vec<MergeStep>;

/// Partition of a chunk into phrase spans (chunk-relative, contiguous,
/// covering every token exactly once).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPartition {
    pub spans: Vec<(u32, u32)>,
}

/// Max-heap entry: a candidate merge of two adjacent phrase instances.
/// `*_version` stamps invalidate the entry lazily if either side changed.
#[derive(Debug)]
struct Candidate {
    sig: f64,
    left: u32,
    right: u32,
    left_version: u32,
    right_version: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on significance; ties prefer the leftmost pair so
        // construction is deterministic.
        self.sig
            .partial_cmp(&other.sig)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.left.cmp(&self.left))
    }
}

/// Mutable node state for the in-place linked list of phrase instances.
struct Nodes<'a> {
    tokens: &'a [u32],
    start: Vec<u32>,
    end: Vec<u32>,
    prev: Vec<i32>,
    next: Vec<i32>,
    alive: Vec<bool>,
    version: Vec<u32>,
}

impl<'a> Nodes<'a> {
    fn new(tokens: &'a [u32]) -> Self {
        let n = tokens.len();
        Self {
            tokens,
            start: (0..n as u32).collect(),
            end: (1..=n as u32).collect(),
            prev: (0..n as i32).map(|i| i - 1).collect(),
            next: (0..n as i32)
                .map(|i| if i + 1 < n as i32 { i + 1 } else { -1 })
                .collect(),
            alive: vec![true; n],
            version: vec![0; n],
        }
    }

    fn span(&self, i: u32) -> &[u32] {
        &self.tokens[self.start[i as usize] as usize..self.end[i as usize] as usize]
    }
}

/// Score the merge of nodes `(a, b)` and push it if it can ever be taken.
fn push_candidate<C: PhraseCounts + ?Sized>(
    heap: &mut BinaryHeap<Candidate>,
    nodes: &Nodes,
    stats: &C,
    alpha: f64,
    a: u32,
    b: u32,
) {
    let merged = &nodes.tokens[nodes.start[a as usize] as usize..nodes.end[b as usize] as usize];
    let (f1, f2, f12) = stats.merge_counts(nodes.span(a), nodes.span(b), merged);
    let sig = significance(f12, f1, f2, stats.total_tokens());
    // Entries below α can never be merged (their score is immutable until a
    // neighbor merge invalidates them), so skip the heap traffic.
    if sig >= alpha {
        heap.push(Candidate {
            sig,
            left: a,
            right: b,
            left_version: nodes.version[a as usize],
            right_version: nodes.version[b as usize],
        });
    }
}

/// Run Algorithm 2 on one chunk. If `trace` is given, every merge is
/// recorded in order.
pub fn construct_chunk<C: PhraseCounts + ?Sized>(
    tokens: &[u32],
    stats: &C,
    alpha: f64,
    mut trace: Option<&mut MergeTrace>,
) -> ChunkPartition {
    let n = tokens.len();
    if n == 0 {
        return ChunkPartition { spans: Vec::new() };
    }
    let mut nodes = Nodes::new(tokens);
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(n);
    for i in 0..n.saturating_sub(1) as u32 {
        push_candidate(&mut heap, &nodes, stats, alpha, i, i + 1);
    }

    let mut iteration = 0usize;
    while let Some(cand) = heap.pop() {
        let (a, b) = (cand.left as usize, cand.right as usize);
        // Lazy invalidation: either side changed or died since scoring.
        if !nodes.alive[a]
            || !nodes.alive[b]
            || nodes.version[a] != cand.left_version
            || nodes.version[b] != cand.right_version
            || nodes.next[a] != cand.right as i32
        {
            continue;
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(MergeStep {
                iteration,
                left: (nodes.start[a], nodes.end[a]),
                right: (nodes.start[b], nodes.end[b]),
                significance: cand.sig,
            });
        }
        iteration += 1;
        // Merge b into a.
        nodes.end[a] = nodes.end[b];
        nodes.alive[b] = false;
        nodes.version[a] = nodes.version[a].wrapping_add(1);
        let after = nodes.next[b];
        nodes.next[a] = after;
        if after >= 0 {
            nodes.prev[after as usize] = a as i32;
        }
        // Re-score against the new neighbors (Algorithm 2 line 8).
        let before = nodes.prev[a];
        if before >= 0 {
            push_candidate(&mut heap, &nodes, stats, alpha, before as u32, a as u32);
        }
        if after >= 0 {
            push_candidate(&mut heap, &nodes, stats, alpha, a as u32, after as u32);
        }
    }

    // Collect surviving instances left-to-right. Node 0 is always a head
    // (merges only ever kill the right member).
    let mut spans = Vec::new();
    let mut cursor = 0i32;
    while cursor >= 0 {
        let i = cursor as usize;
        debug_assert!(nodes.alive[i]);
        spans.push((nodes.start[i], nodes.end[i]));
        cursor = nodes.next[i];
    }
    ChunkPartition { spans }
}

/// Convenience wrapper applying [`construct_chunk`] to every chunk of a
/// document, producing document-relative spans.
#[derive(Debug, Clone, Copy)]
pub struct PhraseConstructor {
    /// Significance threshold α.
    pub alpha: f64,
}

impl PhraseConstructor {
    pub fn new(alpha: f64) -> Self {
        Self { alpha }
    }

    /// Partition a whole document; spans are document-relative.
    pub fn construct_doc<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
    ) -> Vec<(u32, u32)> {
        self.construct_doc_impl(doc, stats, None).0
    }

    /// Same, also returning the concatenated merge trace (chunk-relative
    /// spans are shifted to document offsets).
    pub fn construct_doc_traced<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
    ) -> (Vec<(u32, u32)>, MergeTrace) {
        let mut trace = MergeTrace::new();
        let spans = self.construct_doc_impl(doc, stats, Some(&mut trace)).0;
        (spans, trace)
    }

    fn construct_doc_impl<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
        mut trace: Option<&mut MergeTrace>,
    ) -> (Vec<(u32, u32)>, ()) {
        let mut spans = Vec::with_capacity(doc.n_tokens());
        for (cstart, cend) in doc.chunk_ranges() {
            let chunk = &doc.tokens[cstart..cend];
            let mut local_trace = trace.as_ref().map(|_| MergeTrace::new());
            let part = construct_chunk(chunk, stats, self.alpha, local_trace.as_mut());
            for (s, e) in part.spans {
                spans.push((s + cstart as u32, e + cstart as u32));
            }
            if let (Some(trace), Some(local)) = (trace.as_deref_mut(), local_trace) {
                for mut step in local {
                    step.left.0 += cstart as u32;
                    step.left.1 += cstart as u32;
                    step.right.0 += cstart as u32;
                    step.right.1 += cstart as u32;
                    trace.push(step);
                }
            }
        }
        (spans, ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PhraseStats;
    use topmine_util::FxHashMap;

    /// Hand-assembled stats: unigram counts + frequent n-gram counts.
    fn stats(unigrams: Vec<u64>, ngrams: &[(&[u32], u64)], total: u64) -> PhraseStats {
        let mut map: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
        let mut max_len = 1;
        for (p, c) in ngrams {
            map.insert(p.to_vec().into_boxed_slice(), *c);
            max_len = max_len.max(p.len());
        }
        PhraseStats {
            unigram_counts: unigrams,
            ngram_counts: map,
            total_tokens: total,
            min_support: 1,
            max_len,
        }
    }

    fn spans_of(tokens: &[u32], st: &PhraseStats, alpha: f64) -> Vec<(u32, u32)> {
        construct_chunk(tokens, st, alpha, None).spans
    }

    #[test]
    fn empty_and_singleton_chunks() {
        let st = stats(vec![10, 10], &[], 100);
        assert!(spans_of(&[], &st, 1.0).is_empty());
        assert_eq!(spans_of(&[0], &st, 1.0), vec![(0, 1)]);
    }

    #[test]
    fn significant_bigram_merges() {
        // Words 0,1 strongly collocated; word 2 independent.
        let st = stats(vec![50, 50, 1000], &[(&[0, 1], 45)], 100_000);
        assert_eq!(spans_of(&[0, 1, 2], &st, 3.0), vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn high_alpha_keeps_singletons() {
        let st = stats(vec![50, 50], &[(&[0, 1], 45)], 100_000);
        assert_eq!(spans_of(&[0, 1], &st, 1e9), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn unseen_pairs_never_merge() {
        // Even with an absurdly permissive (finite) α, a pair whose merge
        // was never observed as a frequent phrase cannot merge.
        let st = stats(vec![100, 100], &[], 10_000);
        assert_eq!(spans_of(&[0, 1], &st, -1e300), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn greedy_order_prefers_strongest_pair() {
        // Chunk [0 1 2]. sig(1,2) >> sig(0,1); once (1 2) exists, 0 cannot
        // join because the trigram is unseen. A left-to-right merger would
        // have produced (0 1)(2) instead.
        let st = stats(
            vec![500, 40, 40, 0],
            &[(&[0, 1], 6), (&[1, 2], 38)],
            100_000,
        );
        assert_eq!(spans_of(&[0, 1, 2], &st, 2.0), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn builds_trigram_through_two_merges() {
        // "support vector machine": all three pairwise-composable counts
        // present; trigram frequent so the second merge sees a real count.
        let st = stats(
            vec![60, 55, 70],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        assert_eq!(spans_of(&[0, 1, 2], &st, 3.0), vec![(0, 3)]);
    }

    #[test]
    fn free_rider_does_not_extend_phrase() {
        // (0 1) is a real collocation; token 2 is a very common word that
        // follows everything. The trigram count equals exactly what chance
        // predicts given (0 1) and 2, so its significance is ~0 < α.
        let l = 1_000_000u64;
        let f01 = 500u64;
        let f2 = 50_000u64;
        let chance = (f01 as f64 * f2 as f64 / l as f64) as u64; // 25
        let st = stats(
            vec![600, 550, f2],
            &[(&[0, 1], f01), (&[1, 2], 30), (&[0, 1, 2], chance)],
            l,
        );
        let spans = spans_of(&[0, 1, 2], &st, 3.0);
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn partition_always_covers_chunk() {
        let st = stats(
            vec![10, 20, 30, 40, 50],
            &[(&[0, 1], 9), (&[2, 3], 8), (&[1, 2], 7)],
            1_000,
        );
        for len in 0..5usize {
            let tokens: Vec<u32> = (0..len as u32).collect();
            let spans = spans_of(&tokens, &st, 0.5);
            // Coverage: concatenation of spans == chunk.
            let mut pos = 0u32;
            for &(s, e) in &spans {
                assert_eq!(s, pos);
                assert!(e > s);
                pos = e;
            }
            assert_eq!(pos as usize, len);
        }
    }

    #[test]
    fn merge_trace_records_iterations_and_spans() {
        let st = stats(
            vec![60, 55, 70],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        let mut trace = MergeTrace::new();
        let part = construct_chunk(&[0, 1, 2], &st, 3.0, Some(&mut trace));
        assert_eq!(part.spans, vec![(0, 3)]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].iteration, 0);
        assert_eq!(trace[1].iteration, 1);
        // Second merge is between a 2-token phrase and a 1-token phrase.
        let width = |s: (u32, u32)| s.1 - s.0;
        assert_eq!(width(trace[1].left) + width(trace[1].right), 3);
        assert!(trace[0].significance >= 3.0);
    }

    #[test]
    fn doc_level_spans_respect_chunks() {
        use topmine_corpus::Document;
        // Two chunks: [0 1] and [0 1]; bigram frequent. Spans must not span
        // the chunk boundary even though tokens 1,0 are adjacent in the doc.
        let st = stats(vec![50, 50], &[(&[0, 1], 45)], 100_000);
        let doc = Document::from_chunks([&[0u32, 1][..], &[0, 1]]);
        let spans = PhraseConstructor::new(2.0).construct_doc(&doc, &st);
        assert_eq!(spans, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn traced_doc_spans_match_untraced() {
        use topmine_corpus::Document;
        let st = stats(
            vec![60, 55, 70, 5],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        let doc = Document::from_chunks([&[0u32, 1, 2][..], &[3, 0, 1]]);
        let ctor = PhraseConstructor::new(2.0);
        let plain = ctor.construct_doc(&doc, &st);
        let (traced, trace) = ctor.construct_doc_traced(&doc, &st);
        assert_eq!(plain, traced);
        // Trace spans from the second chunk are document-relative.
        assert!(trace.iter().any(|s| s.left.0 >= 3 || s.right.0 >= 3));
    }
}
