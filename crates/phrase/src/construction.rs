//! Bottom-up phrase construction — the paper's Algorithm 2.
//!
//! Each punctuation chunk starts as a sequence of single-token phrase
//! instances. A max-heap keyed by the significance score (Eq. 1) repeatedly
//! selects the adjacent pair whose merge is most significant; the pair is
//! merged into one phrase instance and the heap is updated with the new
//! instance's left and right neighbors. Construction stops when the best
//! candidate falls below the threshold `α` (the dashed line in the paper's
//! Figure 1) or everything merged into one phrase. The surviving instances
//! form a partition of the chunk — the "bag of phrases".
//!
//! Because a merged phrase is treated as *one unit* in later significance
//! computations, long phrases must justify themselves against their two
//! constituent sub-phrases (not against all their unigrams), which is the
//! paper's answer to the "free-rider" problem.
//!
//! Complexity: each chunk of length `m` performs at most `m−1` merges, each
//! `O(log m)` heap work (lazy deletion via version stamps), matching the
//! paper's `O(log N_d)` per-merge claim.
//!
//! The node arrays and the heap live in a reusable [`ConstructScratch`] —
//! one per worker thread — so constructing a corpus allocates per *document*
//! (the output spans), not per chunk or per merge.

use crate::counter::PhraseCounts;
use crate::significance::significance;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use topmine_corpus::Document;

/// One recorded merge (for the Figure 1 dendrogram and debugging).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStep {
    /// 0-based merge iteration within the chunk.
    pub iteration: usize,
    /// Chunk-relative `[start, end)` of the left phrase instance.
    pub left: (u32, u32),
    /// Chunk-relative `[start, end)` of the right phrase instance.
    pub right: (u32, u32),
    /// Significance of this merge at the time it was taken.
    pub significance: f64,
}

/// The sequence of merges performed on one chunk.
pub type MergeTrace = Vec<MergeStep>;

/// Partition of a chunk into phrase spans (chunk-relative, contiguous,
/// covering every token exactly once).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPartition {
    pub spans: Vec<(u32, u32)>,
}

/// Max-heap entry: a candidate merge of two adjacent phrase instances.
/// `*_version` stamps invalidate the entry lazily if either side changed.
#[derive(Debug)]
struct Candidate {
    sig: f64,
    left: u32,
    right: u32,
    left_version: u32,
    right_version: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on significance; ties prefer the leftmost pair so
        // construction is deterministic.
        self.sig
            .partial_cmp(&other.sig)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.left.cmp(&self.left))
    }
}

/// Reusable Algorithm 2 working memory: the linked-list node arrays and the
/// candidate max-heap. Each worker thread keeps one scratch and reuses it
/// for every chunk it constructs; `reset` keeps all allocations, so
/// steady-state construction allocates nothing beyond the output spans.
#[derive(Debug, Default)]
pub struct ConstructScratch {
    start: Vec<u32>,
    end: Vec<u32>,
    prev: Vec<i32>,
    next: Vec<i32>,
    alive: Vec<bool>,
    version: Vec<u32>,
    heap: BinaryHeap<Candidate>,
}

impl ConstructScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-initialize for a chunk of `n` tokens, keeping capacity.
    fn reset(&mut self, n: usize) {
        self.start.clear();
        self.start.extend(0..n as u32);
        self.end.clear();
        self.end.extend(1..=n as u32);
        self.prev.clear();
        self.prev.extend((0..n as i32).map(|i| i - 1));
        self.next.clear();
        self.next
            .extend((0..n as i32).map(|i| if i + 1 < n as i32 { i + 1 } else { -1 }));
        self.alive.clear();
        self.alive.resize(n, true);
        self.version.clear();
        self.version.resize(n, 0);
        self.heap.clear();
    }

    fn span<'t>(&self, tokens: &'t [u32], i: u32) -> &'t [u32] {
        &tokens[self.start[i as usize] as usize..self.end[i as usize] as usize]
    }

    /// Score the merge of nodes `(a, b)` and push it if it can ever be taken.
    fn push_candidate<C: PhraseCounts + ?Sized>(
        &mut self,
        tokens: &[u32],
        stats: &C,
        alpha: f64,
        a: u32,
        b: u32,
    ) {
        let merged = &tokens[self.start[a as usize] as usize..self.end[b as usize] as usize];
        let (f1, f2, f12) = stats.merge_counts(self.span(tokens, a), self.span(tokens, b), merged);
        let sig = significance(f12, f1, f2, stats.total_tokens());
        // Entries below α can never be merged (their score is immutable until
        // a neighbor merge invalidates them), so skip the heap traffic.
        if sig >= alpha {
            self.heap.push(Candidate {
                sig,
                left: a,
                right: b,
                left_version: self.version[a as usize],
                right_version: self.version[b as usize],
            });
        }
    }
}

/// Run Algorithm 2 on one chunk. If `trace` is given, every merge is
/// recorded in order.
pub fn construct_chunk<C: PhraseCounts + ?Sized>(
    tokens: &[u32],
    stats: &C,
    alpha: f64,
    trace: Option<&mut MergeTrace>,
) -> ChunkPartition {
    let mut scratch = ConstructScratch::default();
    let mut spans = Vec::new();
    construct_chunk_into(tokens, stats, alpha, trace, &mut scratch, 0, &mut spans);
    ChunkPartition { spans }
}

/// Run Algorithm 2 on one chunk using caller-provided scratch, appending
/// spans shifted by `offset` (the chunk's document offset) to `out`. Trace
/// spans are shifted the same way; trace iterations restart per chunk.
pub fn construct_chunk_into<C: PhraseCounts + ?Sized>(
    tokens: &[u32],
    stats: &C,
    alpha: f64,
    mut trace: Option<&mut MergeTrace>,
    scratch: &mut ConstructScratch,
    offset: u32,
    out: &mut Vec<(u32, u32)>,
) {
    let n = tokens.len();
    if n == 0 {
        return;
    }
    scratch.reset(n);
    for i in 0..n.saturating_sub(1) as u32 {
        scratch.push_candidate(tokens, stats, alpha, i, i + 1);
    }

    let mut iteration = 0usize;
    while let Some(cand) = scratch.heap.pop() {
        let (a, b) = (cand.left as usize, cand.right as usize);
        // Lazy invalidation: either side changed or died since scoring.
        if !scratch.alive[a]
            || !scratch.alive[b]
            || scratch.version[a] != cand.left_version
            || scratch.version[b] != cand.right_version
            || scratch.next[a] != cand.right as i32
        {
            continue;
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(MergeStep {
                iteration,
                left: (scratch.start[a] + offset, scratch.end[a] + offset),
                right: (scratch.start[b] + offset, scratch.end[b] + offset),
                significance: cand.sig,
            });
        }
        iteration += 1;
        // Merge b into a.
        scratch.end[a] = scratch.end[b];
        scratch.alive[b] = false;
        scratch.version[a] = scratch.version[a].wrapping_add(1);
        let after = scratch.next[b];
        scratch.next[a] = after;
        if after >= 0 {
            scratch.prev[after as usize] = a as i32;
        }
        // Re-score against the new neighbors (Algorithm 2 line 8).
        let before = scratch.prev[a];
        if before >= 0 {
            scratch.push_candidate(tokens, stats, alpha, before as u32, a as u32);
        }
        if after >= 0 {
            scratch.push_candidate(tokens, stats, alpha, a as u32, after as u32);
        }
    }

    // Collect surviving instances left-to-right. Node 0 is always a head
    // (merges only ever kill the right member).
    let mut cursor = 0i32;
    while cursor >= 0 {
        let i = cursor as usize;
        debug_assert!(scratch.alive[i]);
        out.push((scratch.start[i] + offset, scratch.end[i] + offset));
        cursor = scratch.next[i];
    }
}

/// Convenience wrapper applying [`construct_chunk`] to every chunk of a
/// document, producing document-relative spans.
#[derive(Debug, Clone, Copy)]
pub struct PhraseConstructor {
    /// Significance threshold α.
    pub alpha: f64,
}

impl PhraseConstructor {
    pub fn new(alpha: f64) -> Self {
        Self { alpha }
    }

    /// Partition a whole document; spans are document-relative.
    pub fn construct_doc<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
    ) -> Vec<(u32, u32)> {
        let mut scratch = ConstructScratch::default();
        self.construct_doc_with(doc, stats, &mut scratch)
    }

    /// Partition a whole document reusing caller-provided scratch — the
    /// allocation-free path: per document only the returned span vector is
    /// allocated.
    pub fn construct_doc_with<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
        scratch: &mut ConstructScratch,
    ) -> Vec<(u32, u32)> {
        let mut spans = Vec::with_capacity(doc.n_tokens());
        for (cstart, cend) in doc.chunk_ranges() {
            construct_chunk_into(
                &doc.tokens[cstart..cend],
                stats,
                self.alpha,
                None,
                scratch,
                cstart as u32,
                &mut spans,
            );
        }
        spans
    }

    /// Same, also returning the concatenated merge trace (chunk-relative
    /// spans are shifted to document offsets).
    pub fn construct_doc_traced<C: PhraseCounts + ?Sized>(
        &self,
        doc: &Document,
        stats: &C,
    ) -> (Vec<(u32, u32)>, MergeTrace) {
        let mut scratch = ConstructScratch::default();
        let mut trace = MergeTrace::new();
        let mut spans = Vec::with_capacity(doc.n_tokens());
        for (cstart, cend) in doc.chunk_ranges() {
            construct_chunk_into(
                &doc.tokens[cstart..cend],
                stats,
                self.alpha,
                Some(&mut trace),
                &mut scratch,
                cstart as u32,
                &mut spans,
            );
        }
        (spans, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PhraseStats;
    use topmine_util::FxHashMap;

    /// Hand-assembled stats: unigram counts + frequent n-gram counts.
    fn stats(unigrams: Vec<u64>, ngrams: &[(&[u32], u64)], total: u64) -> PhraseStats {
        let mut map: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();
        let mut max_len = 1;
        for (p, c) in ngrams {
            map.insert(p.to_vec().into_boxed_slice(), *c);
            max_len = max_len.max(p.len());
        }
        PhraseStats {
            unigram_counts: unigrams,
            ngram_counts: map,
            total_tokens: total,
            min_support: 1,
            max_len,
        }
    }

    fn spans_of(tokens: &[u32], st: &PhraseStats, alpha: f64) -> Vec<(u32, u32)> {
        construct_chunk(tokens, st, alpha, None).spans
    }

    #[test]
    fn empty_and_singleton_chunks() {
        let st = stats(vec![10, 10], &[], 100);
        assert!(spans_of(&[], &st, 1.0).is_empty());
        assert_eq!(spans_of(&[0], &st, 1.0), vec![(0, 1)]);
    }

    #[test]
    fn significant_bigram_merges() {
        // Words 0,1 strongly collocated; word 2 independent.
        let st = stats(vec![50, 50, 1000], &[(&[0, 1], 45)], 100_000);
        assert_eq!(spans_of(&[0, 1, 2], &st, 3.0), vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn high_alpha_keeps_singletons() {
        let st = stats(vec![50, 50], &[(&[0, 1], 45)], 100_000);
        assert_eq!(spans_of(&[0, 1], &st, 1e9), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn unseen_pairs_never_merge() {
        // Even with an absurdly permissive (finite) α, a pair whose merge
        // was never observed as a frequent phrase cannot merge.
        let st = stats(vec![100, 100], &[], 10_000);
        assert_eq!(spans_of(&[0, 1], &st, -1e300), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn greedy_order_prefers_strongest_pair() {
        // Chunk [0 1 2]. sig(1,2) >> sig(0,1); once (1 2) exists, 0 cannot
        // join because the trigram is unseen. A left-to-right merger would
        // have produced (0 1)(2) instead.
        let st = stats(
            vec![500, 40, 40, 0],
            &[(&[0, 1], 6), (&[1, 2], 38)],
            100_000,
        );
        assert_eq!(spans_of(&[0, 1, 2], &st, 2.0), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn builds_trigram_through_two_merges() {
        // "support vector machine": all three pairwise-composable counts
        // present; trigram frequent so the second merge sees a real count.
        let st = stats(
            vec![60, 55, 70],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        assert_eq!(spans_of(&[0, 1, 2], &st, 3.0), vec![(0, 3)]);
    }

    #[test]
    fn free_rider_does_not_extend_phrase() {
        // (0 1) is a real collocation; token 2 is a very common word that
        // follows everything. The trigram count equals exactly what chance
        // predicts given (0 1) and 2, so its significance is ~0 < α.
        let l = 1_000_000u64;
        let f01 = 500u64;
        let f2 = 50_000u64;
        let chance = (f01 as f64 * f2 as f64 / l as f64) as u64; // 25
        let st = stats(
            vec![600, 550, f2],
            &[(&[0, 1], f01), (&[1, 2], 30), (&[0, 1, 2], chance)],
            l,
        );
        let spans = spans_of(&[0, 1, 2], &st, 3.0);
        assert_eq!(spans, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn partition_always_covers_chunk() {
        let st = stats(
            vec![10, 20, 30, 40, 50],
            &[(&[0, 1], 9), (&[2, 3], 8), (&[1, 2], 7)],
            1_000,
        );
        for len in 0..5usize {
            let tokens: Vec<u32> = (0..len as u32).collect();
            let spans = spans_of(&tokens, &st, 0.5);
            // Coverage: concatenation of spans == chunk.
            let mut pos = 0u32;
            for &(s, e) in &spans {
                assert_eq!(s, pos);
                assert!(e > s);
                pos = e;
            }
            assert_eq!(pos as usize, len);
        }
    }

    #[test]
    fn merge_trace_records_iterations_and_spans() {
        let st = stats(
            vec![60, 55, 70],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        let mut trace = MergeTrace::new();
        let part = construct_chunk(&[0, 1, 2], &st, 3.0, Some(&mut trace));
        assert_eq!(part.spans, vec![(0, 3)]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].iteration, 0);
        assert_eq!(trace[1].iteration, 1);
        // Second merge is between a 2-token phrase and a 1-token phrase.
        let width = |s: (u32, u32)| s.1 - s.0;
        assert_eq!(width(trace[1].left) + width(trace[1].right), 3);
        assert!(trace[0].significance >= 3.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        use topmine_corpus::Document;
        let st = stats(
            vec![60, 55, 70, 5],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        let docs = [
            Document::from_chunks([&[0u32, 1, 2][..], &[3, 0, 1]]),
            Document::from_chunks([&[3u32][..]]),
            Document::from_chunks([&[0u32, 1, 2, 3, 0, 1][..]]),
        ];
        let ctor = PhraseConstructor::new(2.0);
        let mut scratch = ConstructScratch::new();
        for doc in &docs {
            let reused = ctor.construct_doc_with(doc, &st, &mut scratch);
            let fresh = ctor.construct_doc(doc, &st);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn doc_level_spans_respect_chunks() {
        use topmine_corpus::Document;
        // Two chunks: [0 1] and [0 1]; bigram frequent. Spans must not span
        // the chunk boundary even though tokens 1,0 are adjacent in the doc.
        let st = stats(vec![50, 50], &[(&[0, 1], 45)], 100_000);
        let doc = Document::from_chunks([&[0u32, 1][..], &[0, 1]]);
        let spans = PhraseConstructor::new(2.0).construct_doc(&doc, &st);
        assert_eq!(spans, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn traced_doc_spans_match_untraced() {
        use topmine_corpus::Document;
        let st = stats(
            vec![60, 55, 70, 5],
            &[(&[0, 1], 50), (&[1, 2], 48), (&[0, 1, 2], 46)],
            1_000_000,
        );
        let doc = Document::from_chunks([&[0u32, 1, 2][..], &[3, 0, 1]]);
        let ctor = PhraseConstructor::new(2.0);
        let plain = ctor.construct_doc(&doc, &st);
        let (traced, trace) = ctor.construct_doc_traced(&doc, &st);
        assert_eq!(plain, traced);
        // Trace spans from the second chunk are document-relative.
        assert!(trace.iter().any(|s| s.left.0 >= 3 || s.right.0 >= 3));
    }
}
