//! Corpus-level segmentation: Algorithm 1 + Algorithm 2 end to end.
//!
//! The [`Segmenter`] mines frequent phrases once, then partitions every
//! document into phrase instances. The resulting [`Segmentation`] is the
//! "bag of phrases" input to PhraseLDA (paper §5) and also yields the
//! *rectified* phrase counts used for topical-frequency visualization —
//! after segmentation, a quadratic pool of candidates has been reduced to at
//! most a linear number of attested instances (paper §4.2).

use crate::construction::{ConstructScratch, PhraseConstructor};
use crate::counter::{Phrase, PhraseStats};
use crate::miner::{FrequentPhraseMiner, MinerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use topmine_corpus::Corpus;
use topmine_obs::MiningTelemetry;
use topmine_util::FxHashMap;

/// Configuration for the end-to-end segmenter.
#[derive(Debug, Clone)]
pub struct SegmenterConfig {
    /// Frequent-phrase-mining parameters (ε, threads, caps).
    pub miner: MinerConfig,
    /// Significance threshold α for Algorithm 2 (paper Figure 1 uses α = 5).
    pub alpha: f64,
    /// Worker threads for the per-document construction pass.
    pub n_threads: usize,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        Self {
            miner: MinerConfig::default(),
            alpha: 5.0,
            n_threads: 1,
        }
    }
}

/// One segmented document: contiguous, exhaustive phrase spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentedDoc {
    /// Document-relative `[start, end)` spans, in order.
    pub spans: Vec<(u32, u32)>,
}

impl SegmentedDoc {
    pub fn n_phrases(&self) -> usize {
        self.spans.len()
    }

    pub fn n_multiword(&self) -> usize {
        self.spans.iter().filter(|(s, e)| e - s > 1).count()
    }
}

/// The corpus-wide segmentation result.
#[derive(Debug, Clone, Default)]
pub struct Segmentation {
    /// One entry per corpus document, parallel to `corpus.docs`.
    pub docs: Vec<SegmentedDoc>,
    /// The α used to produce this partition.
    pub alpha: f64,
}

impl Segmentation {
    /// Total number of phrase instances.
    pub fn n_phrases(&self) -> usize {
        self.docs.iter().map(SegmentedDoc::n_phrases).sum()
    }

    /// Number of multi-word phrase instances.
    pub fn n_multiword(&self) -> usize {
        self.docs.iter().map(SegmentedDoc::n_multiword).sum()
    }

    /// Rectified phrase-type counts: how often each phrase appears *as a
    /// segment* (not merely as a frequent pattern). This is what Eq. 8's
    /// topical frequency sums over.
    pub fn phrase_counts(&self, corpus: &Corpus) -> FxHashMap<Phrase, u64> {
        let mut counts: FxHashMap<Phrase, u64> = FxHashMap::default();
        for (doc, seg) in corpus.docs.iter().zip(&self.docs) {
            for &(s, e) in &seg.spans {
                let key = &doc.tokens[s as usize..e as usize];
                if let Some(c) = counts.get_mut(key) {
                    *c += 1;
                } else {
                    counts.insert(key.to_vec().into_boxed_slice(), 1);
                }
            }
        }
        counts
    }

    /// Check the partition invariant (paper Definition 1): for every
    /// document, the concatenation of spans equals the document, and no span
    /// crosses a chunk boundary.
    pub fn validate(&self, corpus: &Corpus) -> Result<(), String> {
        if self.docs.len() != corpus.docs.len() {
            return Err("segmentation/corpus length mismatch".into());
        }
        for (d, (doc, seg)) in corpus.docs.iter().zip(&self.docs).enumerate() {
            let mut pos = 0u32;
            for &(s, e) in &seg.spans {
                if s != pos {
                    return Err(format!("doc {d}: gap or overlap at token {pos}"));
                }
                if e <= s {
                    return Err(format!("doc {d}: empty span at {s}"));
                }
                pos = e;
            }
            if pos as usize != doc.n_tokens() {
                return Err(format!(
                    "doc {d}: partition covers {pos} of {} tokens",
                    doc.n_tokens()
                ));
            }
            // No span may cross a chunk boundary.
            let mut ends = doc.chunk_ends.iter().copied().peekable();
            for &(s, e) in &seg.spans {
                while let Some(&ce) = ends.peek() {
                    if ce <= s {
                        ends.next();
                    } else {
                        break;
                    }
                }
                if let Some(&ce) = ends.peek() {
                    if e > ce {
                        return Err(format!("doc {d}: span ({s},{e}) crosses chunk end {ce}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// End-to-end phrase mining + segmentation.
///
/// ```
/// use topmine_corpus::corpus_from_texts;
/// use topmine_phrase::Segmenter;
///
/// let docs: Vec<String> = (0..20)
///     .map(|i| format!("support vector machines for task{}", i % 5))
///     .collect();
/// let corpus = corpus_from_texts(docs.iter().map(String::as_str));
/// let (stats, seg) = Segmenter::with_params(5, 3.0).segment(&corpus);
/// assert!(stats.n_frequent_ngrams() > 0);
/// assert!(seg.n_multiword() > 0);
/// seg.validate(&corpus).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Segmenter {
    config: SegmenterConfig,
    miner: FrequentPhraseMiner,
}

impl Default for Segmenter {
    fn default() -> Self {
        Self::new(SegmenterConfig::default())
    }
}

impl Segmenter {
    pub fn new(config: SegmenterConfig) -> Self {
        // The miner is built once here, not cloned per segment() call.
        let miner = FrequentPhraseMiner::with_config(config.miner.clone());
        Self { config, miner }
    }

    /// Convenience constructor with the two parameters that matter most.
    pub fn with_params(min_support: u64, alpha: f64) -> Self {
        Self::new(SegmenterConfig {
            miner: MinerConfig {
                min_support,
                ..MinerConfig::default()
            },
            alpha,
            n_threads: 1,
        })
    }

    pub fn config(&self) -> &SegmenterConfig {
        &self.config
    }

    /// Run Algorithm 1 once, returning the phrase statistics and per-level
    /// mining telemetry. Callers that segment repeatedly (α sweeps, benches)
    /// should mine once here and then use [`Segmenter::segment_with_stats`].
    pub fn mine(&self, corpus: &Corpus) -> (PhraseStats, MiningTelemetry) {
        self.miner.mine_with_telemetry(corpus)
    }

    /// Mine frequent phrases, then segment every document.
    pub fn segment(&self, corpus: &Corpus) -> (PhraseStats, Segmentation) {
        let (stats, _) = self.mine(corpus);
        let seg = self.segment_with_stats(corpus, &stats);
        (stats, seg)
    }

    /// Segment using pre-mined statistics — the primary path for anything
    /// that already mined (or segments more than once: α sweeps, benches,
    /// ablations share one mining pass this way).
    pub fn segment_with_stats(&self, corpus: &Corpus, stats: &PhraseStats) -> Segmentation {
        let ctor = PhraseConstructor::new(self.config.alpha);
        let docs: Vec<SegmentedDoc> = if self.config.n_threads > 1 && corpus.docs.len() > 1 {
            // Work-queue scheduling: fixed-size blocks of documents go to
            // whichever worker is free next, so a run of long documents
            // can't strand the other threads. Workers tag results with doc
            // indices; placement below restores corpus order.
            const BLOCK: usize = 32;
            let n_threads = self.config.n_threads.min(corpus.docs.len());
            let n_blocks = corpus.docs.len().div_ceil(BLOCK);
            let cursor = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, SegmentedDoc)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|_| {
                        let cursor = &cursor;
                        scope.spawn(move || {
                            let mut scratch = ConstructScratch::default();
                            let mut done = Vec::new();
                            loop {
                                let b = cursor.fetch_add(1, Ordering::Relaxed);
                                if b >= n_blocks {
                                    break;
                                }
                                let start = b * BLOCK;
                                let end = (start + BLOCK).min(corpus.docs.len());
                                for (i, doc) in corpus.docs[start..end].iter().enumerate() {
                                    done.push((
                                        start + i,
                                        SegmentedDoc {
                                            spans: ctor.construct_doc_with(
                                                doc,
                                                stats,
                                                &mut scratch,
                                            ),
                                        },
                                    ));
                                }
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segmentation worker panicked"))
                    .collect()
            });
            let mut docs = vec![SegmentedDoc::default(); corpus.docs.len()];
            for worker in per_worker {
                for (i, sd) in worker {
                    docs[i] = sd;
                }
            }
            docs
        } else {
            let mut scratch = ConstructScratch::default();
            corpus
                .docs
                .iter()
                .map(|doc| SegmentedDoc {
                    spans: ctor.construct_doc_with(doc, stats, &mut scratch),
                })
                .collect()
        };
        let seg = Segmentation {
            docs,
            alpha: self.config.alpha,
        };
        debug_assert!(seg.validate(corpus).is_ok());
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topmine_corpus::{corpus_from_texts, CorpusBuilder, CorpusOptions};

    /// A corpus where "support vector machine" is an overwhelming
    /// collocation and filler words are independent noise.
    fn svm_corpus() -> Corpus {
        // Vary the surrounding words so only "support vector machines" is a
        // consistent collocation (a fully repeated title would itself be
        // segmented as one long frequent phrase — correctly).
        let verbs = [
            "study", "analysis", "survey", "review", "critique", "history",
        ];
        let mut texts = Vec::new();
        for i in 0..30 {
            texts.push(format!(
                "{} of support vector machines for task{}",
                verbs[i % verbs.len()],
                i % 7
            ));
            texts.push(format!("filler{} text about results", i));
        }
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        corpus_from_texts(refs)
    }

    #[test]
    fn segments_collocation_as_one_phrase() {
        let corpus = svm_corpus();
        let (stats, seg) = Segmenter::with_params(5, 4.0).segment(&corpus);
        seg.validate(&corpus).unwrap();
        assert!(
            stats.count(&[
                corpus.vocab.id("support").unwrap(),
                corpus.vocab.id("vector").unwrap(),
                corpus.vocab.id("machin").unwrap()
            ]) >= 30
        );
        let counts = seg.phrase_counts(&corpus);
        let svm: Vec<u32> = ["support", "vector", "machin"]
            .iter()
            .map(|w| corpus.vocab.id(w).unwrap())
            .collect();
        assert!(
            counts.get(svm.as_slice()).copied().unwrap_or(0) >= 25,
            "svm should be segmented as one phrase: {:?}",
            counts
                .iter()
                .filter(|(p, _)| p.len() > 1)
                .map(|(p, c)| (corpus.vocab.render(p), *c))
                .collect::<Vec<_>>()
        );
        assert!(seg.n_multiword() >= 25);
    }

    #[test]
    fn high_alpha_means_all_singletons() {
        let corpus = svm_corpus();
        let (_, seg) = Segmenter::with_params(5, 1e12).segment(&corpus);
        seg.validate(&corpus).unwrap();
        assert_eq!(seg.n_multiword(), 0);
        assert_eq!(seg.n_phrases(), corpus.n_tokens());
    }

    #[test]
    fn phrase_counts_sum_to_phrase_instances() {
        let corpus = svm_corpus();
        let (_, seg) = Segmenter::with_params(4, 3.0).segment(&corpus);
        let counts = seg.phrase_counts(&corpus);
        let total: u64 = counts.values().sum();
        assert_eq!(total as usize, seg.n_phrases());
    }

    #[test]
    fn parallel_segmentation_matches_sequential() {
        let corpus = svm_corpus();
        let (stats, seq) = Segmenter::with_params(4, 3.0).segment(&corpus);
        let par = Segmenter::new(SegmenterConfig {
            miner: MinerConfig {
                min_support: 4,
                ..MinerConfig::default()
            },
            alpha: 3.0,
            n_threads: 4,
        })
        .segment_with_stats(&corpus, &stats);
        assert_eq!(seq.docs, par.docs);
    }

    #[test]
    fn empty_documents_segment_to_nothing() {
        let mut b = CorpusBuilder::new(CorpusOptions::default());
        b.add_document("");
        b.add_document("data mining");
        let corpus = b.build();
        let (_, seg) = Segmenter::with_params(1, 100.0).segment(&corpus);
        assert!(seg.docs[0].spans.is_empty());
        assert_eq!(seg.docs[1].n_phrases(), 2);
        seg.validate(&corpus).unwrap();
    }

    #[test]
    fn validate_catches_corruption() {
        let corpus = svm_corpus();
        let (_, mut seg) = Segmenter::with_params(5, 4.0).segment(&corpus);
        seg.docs[0].spans.clear();
        assert!(seg.validate(&corpus).is_err());
    }

    #[test]
    fn example1_titles_segment_like_the_paper() {
        // Example 1: both titles contain the "frequent pattern" collocation;
        // with enough supporting corpus the segmenter groups it.
        let mut texts = vec![
            "Mining frequent patterns without candidate generation: a frequent pattern tree approach."
                .to_string(),
            "Frequent pattern mining: current status and future directions.".to_string(),
        ];
        for i in 0..20 {
            texts.push(format!("frequent pattern mining study number{i}"));
            texts.push(format!("unrelated title about networks {i}"));
        }
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let corpus = corpus_from_texts(refs);
        let (_, seg) = Segmenter::with_params(5, 3.0).segment(&corpus);
        seg.validate(&corpus).unwrap();
        let counts = seg.phrase_counts(&corpus);
        let fp: Vec<u32> = ["frequent", "pattern"]
            .iter()
            .map(|w| corpus.vocab.id(w).unwrap())
            .collect();
        // "frequent pattern" (or a superphrase containing it) dominates.
        let multi_with_fp: u64 = counts
            .iter()
            .filter(|(p, _)| p.len() >= 2 && p.windows(2).any(|w| w == fp.as_slice()))
            .map(|(_, c)| *c)
            .sum();
        assert!(multi_with_fp >= 20, "got {multi_with_fp}");
    }
}
