//! Aggregate phrase counts (`C` in the paper's Algorithm 1).
//!
//! Unigram counts are kept densely for *every* word (they are needed as the
//! Bernoulli success probabilities in the significance null model, Eq. 1),
//! while multi-word counts are kept sparsely and contain only phrases that
//! met minimum support.

use topmine_util::FxHashMap;

/// A phrase *type*: its word ids, in order.
pub type Phrase = Box<[u32]>;

/// Read-only access to the phrase frequencies Algorithm 2 consumes.
///
/// [`PhraseStats`] (the miner's hash-map output) is the canonical
/// implementation; `topmine_serve`'s frozen prefix trie is another. Phrase
/// construction is generic over this trait, so unseen text can be segmented
/// against any frozen lexicon without materializing a `PhraseStats`.
pub trait PhraseCounts {
    /// Corpus frequency `f(P)`; 0 for unseen/infrequent phrases.
    fn count(&self, phrase: &[u32]) -> u64;

    /// Total token count `L` of the corpus the lexicon was mined from.
    fn total_tokens(&self) -> u64;

    /// Empirical Bernoulli probability `p(P) = f(P) / L` (Eq. 1's null).
    fn prob(&self, phrase: &[u32]) -> f64 {
        if self.total_tokens() == 0 {
            return 0.0;
        }
        self.count(phrase) as f64 / self.total_tokens() as f64
    }

    /// The three counts that score one merge candidate in Algorithm 2:
    /// `(f(left), f(right), f(left·right))` where `merged` is the
    /// concatenation of `left` and `right`. `left` and `merged` share a
    /// first word, so a lexicon partitioned by leading word (a sharded
    /// backend) can resolve their owner once and batch the lookups; the
    /// default is three independent [`PhraseCounts::count`] calls.
    fn merge_counts(&self, left: &[u32], right: &[u32], merged: &[u32]) -> (u64, u64, u64) {
        (self.count(left), self.count(right), self.count(merged))
    }
}

/// Output of frequent phrase mining: all aggregate statistics that the
/// construction stage (and later topical-frequency ranking) needs.
#[derive(Debug, Clone, Default)]
pub struct PhraseStats {
    /// Count of every word id (dense; includes infrequent words).
    pub unigram_counts: Vec<u64>,
    /// Counts of frequent phrases of length >= 2.
    pub ngram_counts: FxHashMap<Phrase, u64>,
    /// Total number of tokens `L` in the mined corpus.
    pub total_tokens: u64,
    /// The minimum support `ε` the miner was run with.
    pub min_support: u64,
    /// Longest phrase length that produced at least one frequent phrase.
    pub max_len: usize,
}

impl PhraseStats {
    /// Corpus frequency `f(P)` of an arbitrary phrase. Unigrams always have
    /// an exact count; unseen/infrequent n-grams report 0 (they can never be
    /// merged, which is exactly the implicit filtering the paper describes).
    pub fn count(&self, phrase: &[u32]) -> u64 {
        match phrase.len() {
            0 => 0,
            1 => self
                .unigram_counts
                .get(phrase[0] as usize)
                .copied()
                .unwrap_or(0),
            _ => self.ngram_counts.get(phrase).copied().unwrap_or(0),
        }
    }

    /// Empirical Bernoulli probability `p(P) = f(P) / L` (Eq. 1's null).
    pub fn prob(&self, phrase: &[u32]) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        self.count(phrase) as f64 / self.total_tokens as f64
    }

    /// Is `phrase` frequent (support >= ε)?
    pub fn is_frequent(&self, phrase: &[u32]) -> bool {
        self.count(phrase) >= self.min_support
    }

    /// Number of frequent phrases of length >= 2.
    pub fn n_frequent_ngrams(&self) -> usize {
        self.ngram_counts.len()
    }

    /// Number of frequent unigrams.
    pub fn n_frequent_unigrams(&self) -> usize {
        self.unigram_counts
            .iter()
            .filter(|&&c| c >= self.min_support)
            .count()
    }

    /// Iterate all frequent phrases (length >= 1) with their counts.
    /// Unigram phrases are materialized lazily.
    pub fn iter_frequent(&self) -> impl Iterator<Item = (Phrase, u64)> + '_ {
        let unigrams = self
            .unigram_counts
            .iter()
            .enumerate()
            .filter(move |(_, &c)| c >= self.min_support)
            .map(|(w, &c)| (vec![w as u32].into_boxed_slice(), c));
        let ngrams = self.ngram_counts.iter().map(|(p, &c)| (p.clone(), c));
        unigrams.chain(ngrams)
    }

    /// Verify the Apriori invariant: every contiguous sub-phrase of a stored
    /// frequent n-gram is itself frequent, and its count is no smaller.
    /// Used by integration and property tests.
    pub fn check_downward_closure(&self) -> Result<(), String> {
        for (phrase, &count) in &self.ngram_counts {
            if count < self.min_support {
                return Err(format!("stored n-gram below support: {phrase:?} = {count}"));
            }
            for window in [phrase.len() - 1, 1] {
                if window == 0 {
                    continue;
                }
                for sub in phrase.windows(window) {
                    let sub_count = self.count(sub);
                    if sub_count < count {
                        return Err(format!(
                            "sub-phrase {sub:?} ({sub_count}) rarer than super-phrase {phrase:?} ({count})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl PhraseCounts for PhraseStats {
    fn count(&self, phrase: &[u32]) -> u64 {
        PhraseStats::count(self, phrase)
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> PhraseStats {
        let mut ngram_counts = FxHashMap::default();
        ngram_counts.insert(vec![0u32, 1].into_boxed_slice(), 5u64);
        PhraseStats {
            unigram_counts: vec![10, 7, 3],
            ngram_counts,
            total_tokens: 20,
            min_support: 3,
            max_len: 2,
        }
    }

    #[test]
    fn counts_and_probs() {
        let s = stats();
        assert_eq!(s.count(&[0]), 10);
        assert_eq!(s.count(&[0, 1]), 5);
        assert_eq!(s.count(&[1, 0]), 0);
        assert_eq!(s.count(&[]), 0);
        assert_eq!(s.count(&[99]), 0);
        assert!((s.prob(&[0]) - 0.5).abs() < 1e-12);
        assert_eq!(s.prob(&[1, 0]), 0.0);
    }

    #[test]
    fn frequency_threshold() {
        let s = stats();
        assert!(s.is_frequent(&[0]));
        assert!(s.is_frequent(&[2])); // count 3 == min support
        assert!(s.is_frequent(&[0, 1]));
        assert!(!s.is_frequent(&[1, 2]));
        assert_eq!(s.n_frequent_unigrams(), 3);
        assert_eq!(s.n_frequent_ngrams(), 1);
    }

    #[test]
    fn iter_frequent_includes_unigrams_and_ngrams() {
        let s = stats();
        let all: Vec<(Phrase, u64)> = s.iter_frequent().collect();
        assert_eq!(all.len(), 4);
        assert!(all.iter().any(|(p, c)| p.len() == 2 && *c == 5));
    }

    #[test]
    fn downward_closure_checker_detects_violation() {
        let mut s = stats();
        assert!(s.check_downward_closure().is_ok());
        // Make the bigram more frequent than its first word.
        s.unigram_counts[0] = 2;
        assert!(s.check_downward_closure().is_err());
    }

    #[test]
    fn empty_corpus_probs_are_zero() {
        let s = PhraseStats::default();
        assert_eq!(s.prob(&[0]), 0.0);
        assert_eq!(s.count(&[0]), 0);
    }
}
