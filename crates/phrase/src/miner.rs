//! Frequent phrase mining — the paper's Algorithm 1.
//!
//! An increasing-size sliding window over the corpus counts candidate
//! phrases level by level (bigrams, trigrams, ...). Two prunes keep the
//! candidate space sparse:
//!
//! * **Position-based Apriori pruning** (downward closure): a list of
//!   *active indices* per document records the positions whose length-(n−1)
//!   phrase is frequent; a length-n candidate at position `i` is counted only
//!   if both `i` and `i+1` are active — i.e. both constituent (n−1)-grams are
//!   frequent.
//! * **Data antimonotonicity**: a document whose active index set becomes
//!   empty can never again produce a frequent phrase and is dropped from all
//!   further levels, giving the algorithm a natural termination criterion.
//!
//! Documents are additionally *chunked* at phrase-invariant punctuation
//! (paper §4.1): no candidate may cross a chunk boundary, which bounds the
//! per-document work by the (constant) chunk size and makes the whole miner
//! effectively linear in corpus size.
//!
//! # Prefix-id counting
//!
//! The production engine ([`FrequentPhraseMiner::mine`]) never hashes a
//! phrase while counting. Each frequent (n−1)-gram gets a dense `u32` id at
//! its level (at level 2 the id of a unigram is the word id itself), so a
//! level-n candidate is the pair `(prefix_id, next_word)` packed into one
//! `u64` and counted in flat open-addressing [`U64Map`] tables — no
//! per-occurrence allocation, no variable-length hashing. Word-id phrases
//! are materialized only for candidates that survive min-support.
//!
//! Parallel counting hands out fixed-size blocks of documents through an
//! atomic work queue (no static per-thread split, so skewed documents don't
//! strand threads), and the per-thread tables are folded by a deterministic
//! key-sharded merge: worker `s` owns exactly the keys with
//! `hash(key) % n_shards == s`, sums them across all thread tables
//! (addition commutes, so arrival order is irrelevant), and survivors are
//! globally sorted by packed key before ids are assigned. The result is
//! bit-identical to the sequential mine at every thread count.
//!
//! The seed-era hashmap miner is kept as [`FrequentPhraseMiner::mine_legacy`]
//! — it is the benchmark baseline and the equivalence-proptest reference.

use crate::counter::{Phrase, PhraseStats};
use crate::prefix::{fib_hash, U64Map};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use topmine_corpus::{Corpus, Document};
use topmine_obs::{MiningLevel, MiningTelemetry};
use topmine_util::FxHashMap;

/// Configuration for [`FrequentPhraseMiner`].
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum support ε: a phrase is frequent iff its count reaches this.
    pub min_support: u64,
    /// Hard cap on phrase length; `0` means unbounded (terminate naturally).
    pub max_phrase_len: usize,
    /// Worker threads for the counting passes; `1` runs sequentially.
    pub n_threads: usize,
    /// Disable the data-antimonotonicity document drop (ablation knob; the
    /// result is identical, only slower).
    pub disable_doc_pruning: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 5,
            max_phrase_len: 0,
            n_threads: 1,
            disable_doc_pruning: false,
        }
    }
}

/// The Algorithm 1 miner.
#[derive(Debug, Clone, Default)]
pub struct FrequentPhraseMiner {
    config: MinerConfig,
}

/// Per-document mining state for the prefix-id engine.
struct PrefixDocState {
    doc_idx: usize,
    /// Sorted `(position, prefix_id)` pairs: the positions whose
    /// current-level (n−1)-gram is frequent, each tagged with that gram's
    /// dense id. At level 2 the id is the word id itself.
    active: Vec<(u32, u32)>,
    /// `limit[i]` = exclusive end of the chunk containing position `i`.
    limit: Vec<u32>,
}

/// Per-document mining state for the legacy hashmap engine.
struct DocState {
    doc_idx: usize,
    /// Sorted positions whose current-level (n−1)-gram is frequent and fits
    /// inside its chunk.
    active: Vec<u32>,
    /// `limit[i]` = exclusive end of the chunk containing position `i`.
    limit: Vec<u32>,
}

impl FrequentPhraseMiner {
    pub fn new(min_support: u64) -> Self {
        Self {
            config: MinerConfig {
                min_support,
                ..MinerConfig::default()
            },
        }
    }

    pub fn with_config(config: MinerConfig) -> Self {
        assert!(config.min_support >= 1, "min support must be at least 1");
        Self { config }
    }

    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Run Algorithm 1 over `corpus`, returning all aggregate counts.
    pub fn mine(&self, corpus: &Corpus) -> PhraseStats {
        self.mine_with_telemetry(corpus).0
    }

    /// Run the prefix-id engine, also returning per-level telemetry.
    pub fn mine_with_telemetry(&self, corpus: &Corpus) -> (PhraseStats, MiningTelemetry) {
        let t_total = Instant::now();
        let eps = self.config.min_support.max(1);
        assert!(
            (corpus.vocab.len() as u64) < u32::MAX as u64,
            "vocabulary too large for packed prefix keys"
        );

        let mut stats = self.unigram_pass(corpus, eps);
        let mut tel = MiningTelemetry::default();

        // Initialize per-document active sets (line 2): every position whose
        // unigram is frequent, tagged with the word id as its prefix id.
        let mut states: Vec<PrefixDocState> = corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(doc_idx, doc)| PrefixDocState {
                doc_idx,
                active: doc
                    .tokens
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| stats.unigram_counts[t as usize] >= eps)
                    .map(|(i, &t)| (i as u32, t))
                    .collect(),
                limit: chunk_limits(doc),
            })
            .collect();
        states.retain(|s| !s.active.is_empty() || self.config.disable_doc_pruning);

        // Scratch reused across levels: per-thread count tables, per-shard
        // merge tables, the survivor→id table, and the double-buffered
        // phrase arena. Steady-state counting therefore allocates nothing
        // per occurrence (tables only grow while the biggest level is first
        // filled).
        let n_threads = self.config.n_threads.max(1);
        let mut count_tables: Vec<U64Map> = (0..n_threads).map(|_| U64Map::new()).collect();
        let mut merge_tables: Vec<U64Map> = if n_threads > 1 {
            (0..n_threads).map(|_| U64Map::new()).collect()
        } else {
            Vec::new()
        };
        let mut id_map = U64Map::new();
        // Word ids of the previous level's frequent (n−1)-grams, stride
        // (n−1), indexed by prefix id. Empty at level 2 (prefix = word id).
        let mut arena: Vec<u32> = Vec::new();
        let mut next_arena: Vec<u32> = Vec::new();

        let mut n = 2usize; // current candidate length (line 4)
        while !states.is_empty() {
            if self.config.max_phrase_len != 0 && n > self.config.max_phrase_len {
                break;
            }
            let t_level = Instant::now();
            let docs_in = states.len() as u64;

            // Count level-n candidates (lines 12-15).
            for t in &mut count_tables {
                t.clear();
            }
            let occurrences = if n_threads > 1 && states.len() > 1 {
                count_level_queued(corpus, &states, n, &mut count_tables)
            } else {
                let mut occ = 0u64;
                for st in &states {
                    occ += count_level_doc_prefix(
                        &corpus.docs[st.doc_idx],
                        st,
                        n,
                        &mut count_tables[0],
                    );
                }
                occ
            };

            // Deterministic merge + min-support prune (line 22's filter):
            // survivors arrive sorted by packed key, which fixes the id
            // assignment below independently of thread count.
            let (survivors, candidates) = merge_frequent(&count_tables, &mut merge_tables, eps);

            if survivors.is_empty() {
                tel.levels.push(MiningLevel {
                    level: n as u32,
                    candidates,
                    frequent: 0,
                    occurrences,
                    docs_in,
                    docs_out: docs_in,
                    nanos: t_level.elapsed().as_nanos() as u64,
                });
                break;
            }
            assert!(
                survivors.len() < u32::MAX as usize,
                "too many frequent phrases at one level for u32 prefix ids"
            );
            stats.max_len = n;

            // Materialize the survivors (the only place phrases are built)
            // and assign their dense ids for the next level.
            next_arena.clear();
            id_map.clear();
            for (idx, &(key, count)) in survivors.iter().enumerate() {
                let prefix = (key >> 32) as u32;
                let word = key as u32;
                let start = next_arena.len();
                if n == 2 {
                    next_arena.push(prefix);
                } else {
                    let p = prefix as usize * (n - 1);
                    next_arena.extend_from_slice(&arena[p..p + (n - 1)]);
                }
                next_arena.push(word);
                let phrase: Phrase = next_arena[start..].to_vec().into_boxed_slice();
                stats.ngram_counts.insert(phrase, count);
                id_map.set(key, idx as u64);
            }
            std::mem::swap(&mut arena, &mut next_arena);

            // Advance active indices (line 7): a position stays active for
            // level n+1 iff its level-n candidate was countable and survived.
            if n_threads > 1 && states.len() > 1 {
                let chunk = states.len().div_ceil(n_threads);
                let id_map = &id_map;
                std::thread::scope(|scope| {
                    for shard in states.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for st in shard {
                                advance_state(&corpus.docs[st.doc_idx], st, n, id_map);
                            }
                        });
                    }
                });
            } else {
                for st in &mut states {
                    advance_state(&corpus.docs[st.doc_idx], st, n, &id_map);
                }
            }

            // Drop exhausted documents (lines 9-10, data antimonotonicity).
            let docs_out = if self.config.disable_doc_pruning {
                states.iter().filter(|s| !s.active.is_empty()).count()
            } else {
                states.retain(|s| !s.active.is_empty());
                states.len()
            };
            tel.levels.push(MiningLevel {
                level: n as u32,
                candidates,
                frequent: survivors.len() as u64,
                occurrences,
                docs_in,
                docs_out: docs_out as u64,
                nanos: t_level.elapsed().as_nanos() as u64,
            });
            if self.config.disable_doc_pruning && docs_out == 0 {
                // Keep documents alive but stop once *all* are exhausted.
                break;
            }
            n += 1;
        }

        tel.total_nanos = t_total.elapsed().as_nanos() as u64;
        debug_assert!(stats.check_downward_closure().is_ok());
        (stats, tel)
    }

    /// The seed-era Algorithm 1: phrases counted as boxed word-id slices in
    /// hash maps, one static document chunk per thread, maps merged at a
    /// barrier per level. Kept as the benchmark baseline and as the
    /// reference implementation the prefix-id engine is proptested against.
    pub fn mine_legacy(&self, corpus: &Corpus) -> PhraseStats {
        let eps = self.config.min_support.max(1);
        let mut stats = self.unigram_pass(corpus, eps);

        // Initialize per-document active sets (line 2): every position whose
        // unigram is frequent.
        let mut states: Vec<DocState> = corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(doc_idx, doc)| DocState {
                doc_idx,
                active: (0..doc.tokens.len() as u32)
                    .filter(|&i| stats.unigram_counts[doc.tokens[i as usize] as usize] >= eps)
                    .collect(),
                limit: chunk_limits(doc),
            })
            .collect();
        states.retain(|s| !s.active.is_empty() || self.config.disable_doc_pruning);

        let mut n = 2usize; // current candidate length (line 4)
        while !states.is_empty() {
            if self.config.max_phrase_len != 0 && n > self.config.max_phrase_len {
                break;
            }
            // Count level-n candidates (lines 12-15).
            let level_counts = if self.config.n_threads > 1 {
                count_level_parallel(corpus, &states, n, self.config.n_threads)
            } else {
                let mut counts = FxHashMap::default();
                for st in &states {
                    count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut counts);
                }
                counts
            };

            // Prune to frequent phrases (line 22's filter, applied per level).
            let mut any_frequent = false;
            for (phrase, count) in level_counts {
                if count >= eps {
                    stats.ngram_counts.insert(phrase, count);
                    any_frequent = true;
                }
            }
            if !any_frequent {
                break;
            }
            stats.max_len = n;

            // Advance active indices (line 7) and drop exhausted documents
            // (lines 9-10, data antimonotonicity).
            for st in &mut states {
                let doc = &corpus.docs[st.doc_idx];
                let ng = &stats.ngram_counts;
                st.active.retain(|&i| {
                    let i = i as usize;
                    i + n <= st.limit[i] as usize
                        && ng.get(&doc.tokens[i..i + n]).is_some_and(|&c| c >= eps)
                });
            }
            if !self.config.disable_doc_pruning {
                states.retain(|s| !s.active.is_empty());
            } else {
                // Keep documents alive but stop once *all* are exhausted.
                if states.iter().all(|s| s.active.is_empty()) {
                    break;
                }
            }
            n += 1;
        }

        debug_assert!(stats.check_downward_closure().is_ok());
        stats
    }

    /// Level 1: dense unigram counts (the paper's line 3), shared by both
    /// engines.
    fn unigram_pass(&self, corpus: &Corpus, eps: u64) -> PhraseStats {
        let mut unigram_counts = vec![0u64; corpus.vocab.len()];
        let mut total_tokens = 0u64;
        for doc in &corpus.docs {
            total_tokens += doc.tokens.len() as u64;
            for &t in &doc.tokens {
                unigram_counts[t as usize] += 1;
            }
        }
        PhraseStats {
            unigram_counts,
            ngram_counts: FxHashMap::default(),
            total_tokens,
            min_support: eps,
            max_len: 1,
        }
    }
}

/// Build the chunk-limit table: `limit[i]` is the exclusive end of the chunk
/// containing token `i`.
fn chunk_limits(doc: &Document) -> Vec<u32> {
    let mut limit = vec![0u32; doc.tokens.len()];
    for (start, end) in doc.chunk_ranges() {
        for l in &mut limit[start..end] {
            *l = end as u32;
        }
    }
    limit
}

/// Count all level-`n` candidate occurrences of one document into `counts`,
/// returning the number of occurrences counted.
///
/// A candidate at active position `i` is counted iff `i+1` is also active
/// (both constituent (n−1)-grams frequent — downward closure) and the n-gram
/// fits inside `i`'s chunk. The candidate key is the position's prefix id
/// packed with the word that extends it — one `u64`, no allocation.
#[inline]
fn count_level_doc_prefix(
    doc: &Document,
    st: &PrefixDocState,
    n: usize,
    counts: &mut U64Map,
) -> u64 {
    let mut occ = 0u64;
    for w in st.active.windows(2) {
        let (pos, pid) = w[0];
        if w[1].0 != pos + 1 {
            continue; // not adjacent: prefix or suffix (n−1)-gram infrequent
        }
        let i = pos as usize;
        if i + n > st.limit[i] as usize {
            continue; // would cross a chunk boundary
        }
        counts.add(((pid as u64) << 32) | doc.tokens[i + n - 1] as u64, 1);
        occ += 1;
    }
    occ
}

/// Work-queue counting pass: fixed-size blocks of documents are handed to
/// whichever thread is free next (an atomic cursor), so a few long documents
/// can't strand the other workers the way a static per-thread split does.
/// Each worker owns one count table; determinism comes from the sharded
/// merge, not from the schedule.
fn count_level_queued(
    corpus: &Corpus,
    states: &[PrefixDocState],
    n: usize,
    tables: &mut [U64Map],
) -> u64 {
    const BLOCK: usize = 32;
    let n_blocks = states.len().div_ceil(BLOCK);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = tables
            .iter_mut()
            .map(|table| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut occ = 0u64;
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        let start = b * BLOCK;
                        let end = (start + BLOCK).min(states.len());
                        for st in &states[start..end] {
                            occ += count_level_doc_prefix(&corpus.docs[st.doc_idx], st, n, table);
                        }
                    }
                    occ
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mining worker panicked"))
            .sum()
    })
}

/// Which merge shard owns a key. Any pure function of the key works; the
/// high multiplicative-hash bits keep shards balanced and independent of the
/// table's own slot indexing.
#[inline]
fn shard_of(key: u64, n_shards: usize) -> usize {
    ((fib_hash(key) >> 32) as usize) % n_shards
}

/// Fold the per-thread count tables into the global level result:
/// `(survivors sorted by packed key, distinct candidate count)`.
///
/// With several tables, merge worker `s` owns exactly the keys whose
/// [`shard_of`] is `s` and sums them across *all* thread tables — addition
/// commutes, so the result is independent of which thread counted which
/// occurrence. Shards partition the key space, so concatenating the shard
/// survivor lists and sorting by key yields one canonical order at every
/// thread count.
fn merge_frequent(
    tables: &[U64Map],
    merge_scratch: &mut [U64Map],
    eps: u64,
) -> (Vec<(u64, u64)>, u64) {
    if tables.len() == 1 || merge_scratch.is_empty() {
        let mut candidates = 0u64;
        let mut survivors = Vec::new();
        for t in tables {
            candidates += t.len() as u64;
            survivors.extend(t.iter().filter(|&(_, c)| c >= eps));
        }
        survivors.sort_unstable_by_key(|&(k, _)| k);
        return (survivors, candidates);
    }

    let n_shards = merge_scratch.len();
    let sharded: Vec<(Vec<(u64, u64)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = merge_scratch
            .iter_mut()
            .enumerate()
            .map(|(s, local)| {
                scope.spawn(move || {
                    local.clear();
                    for t in tables {
                        for (k, v) in t.iter() {
                            if shard_of(k, n_shards) == s {
                                local.add(k, v);
                            }
                        }
                    }
                    let mut survivors: Vec<(u64, u64)> =
                        local.iter().filter(|&(_, c)| c >= eps).collect();
                    survivors.sort_unstable_by_key(|&(k, _)| k);
                    (survivors, local.len() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("merge worker panicked"))
            .collect()
    });

    let mut candidates = 0u64;
    let mut survivors = Vec::with_capacity(sharded.iter().map(|(v, _)| v.len()).sum());
    for (shard, cand) in sharded {
        candidates += cand;
        survivors.extend(shard);
    }
    survivors.sort_unstable_by_key(|&(k, _)| k);
    (survivors, candidates)
}

/// Rebuild one document's active set after level `n`: position `i` survives
/// iff the pair `(i, i+1)` was countable at level n and its n-gram is in
/// `id_map` (i.e. met min-support); the entry is retagged with the n-gram's
/// dense id. Rewrites `active` in place (the write cursor never passes the
/// read cursor).
fn advance_state(doc: &Document, st: &mut PrefixDocState, n: usize, id_map: &U64Map) {
    let mut w = 0usize;
    for r in 0..st.active.len().saturating_sub(1) {
        let (pos, pid) = st.active[r];
        if st.active[r + 1].0 != pos + 1 {
            continue;
        }
        let i = pos as usize;
        if i + n > st.limit[i] as usize {
            continue;
        }
        let key = ((pid as u64) << 32) | doc.tokens[i + n - 1] as u64;
        if let Some(id) = id_map.get(key) {
            st.active[w] = (pos, id as u32);
            w += 1;
        }
    }
    st.active.truncate(w);
}

/// Count all level-`n` candidate occurrences of one document into `counts`
/// (legacy engine: phrases as boxed word-id slices).
fn count_level_doc(doc: &Document, st: &DocState, n: usize, counts: &mut FxHashMap<Phrase, u64>) {
    let active = &st.active;
    for w in active.windows(2) {
        let (i, j) = (w[0] as usize, w[1] as usize);
        if j != i + 1 {
            continue; // not adjacent: prefix or suffix (n−1)-gram infrequent
        }
        if i + n > st.limit[i] as usize {
            continue; // would cross a chunk boundary
        }
        let window = &doc.tokens[i..i + n];
        if let Some(c) = counts.get_mut(window) {
            *c += 1;
        } else {
            counts.insert(window.to_vec().into_boxed_slice(), 1);
        }
    }
}

/// Map-reduce version of the legacy counting pass: documents are sharded
/// across `n_threads` scoped threads (one static chunk each) with
/// thread-local counters that are merged at a barrier.
fn count_level_parallel(
    corpus: &Corpus,
    states: &[DocState],
    n: usize,
    n_threads: usize,
) -> FxHashMap<Phrase, u64> {
    let n_threads = n_threads.min(states.len().max(1));
    if n_threads <= 1 {
        let mut counts = FxHashMap::default();
        for st in states {
            count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut counts);
        }
        return counts;
    }
    let chunk_size = states.len().div_ceil(n_threads);
    let locals: Vec<FxHashMap<Phrase, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .chunks(chunk_size)
            .map(|shard| {
                scope.spawn(move || {
                    let mut local = FxHashMap::default();
                    for st in shard {
                        count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mining worker panicked"))
            .collect()
    });

    // Merge into the largest map to minimize rehashing.
    let mut iter = locals.into_iter();
    let mut merged = iter.next().unwrap_or_default();
    for local in iter {
        if local.len() > merged.len() {
            let small = std::mem::replace(&mut merged, local);
            for (k, v) in small {
                *merged.entry(k).or_insert(0) += v;
            }
        } else {
            for (k, v) in local {
                *merged.entry(k).or_insert(0) += v;
            }
        }
    }
    merged
}

/// Reference miner used by tests: enumerate every within-chunk n-gram
/// (2 ≤ n ≤ `max_len`), count by type, and keep those meeting support.
/// Quadratic, but obviously correct. Probes with the borrowed window first
/// and allocates a key only on first insert.
pub fn naive_frequent_phrases(
    corpus: &Corpus,
    min_support: u64,
    max_len: usize,
) -> FxHashMap<Phrase, u64> {
    let mut all: FxHashMap<Phrase, u64> = FxHashMap::default();
    for doc in &corpus.docs {
        for chunk in doc.chunks() {
            for n in 2..=max_len.min(chunk.len()) {
                for window in chunk.windows(n) {
                    if let Some(c) = all.get_mut(window) {
                        *c += 1;
                    } else {
                        all.insert(window.to_vec().into_boxed_slice(), 1);
                    }
                }
            }
        }
    }
    all.retain(|_, c| *c >= min_support);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use topmine_corpus::Vocab;

    /// Corpus of integer token docs; one chunk per inner slice group.
    fn corpus(docs: &[&[&[u32]]]) -> Corpus {
        let mut max_id = 0u32;
        for d in docs {
            for c in *d {
                for &t in *c {
                    max_id = max_id.max(t);
                }
            }
        }
        let mut vocab = Vocab::new();
        for i in 0..=max_id {
            vocab.intern(&format!("w{i}"));
        }
        Corpus {
            vocab,
            docs: docs
                .iter()
                .map(|d| Document::from_chunks(d.iter().copied()))
                .collect(),
            provenance: None,
            unstem: None,
        }
    }

    /// Deterministic pseudo-random corpus with heavy repetition.
    fn lcg_corpus(n_docs: usize, chunks: usize, chunk_len: usize, vocab: u64, seed: u64) -> Corpus {
        let mut docs: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut x = seed;
        for _ in 0..n_docs {
            let mut doc = Vec::new();
            for _ in 0..chunks {
                let mut chunk = Vec::new();
                for _ in 0..chunk_len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    chunk.push(((x >> 33) % vocab) as u32);
                }
                doc.push(chunk);
            }
            docs.push(doc);
        }
        let doc_slices: Vec<Vec<&[u32]>> = docs
            .iter()
            .map(|d| d.iter().map(|c| c.as_slice()).collect())
            .collect();
        let doc_refs: Vec<&[&[u32]]> = doc_slices.iter().map(|d| d.as_slice()).collect();
        corpus(&doc_refs)
    }

    #[test]
    fn counts_simple_bigrams() {
        // "a b" appears 3 times; support 2.
        let c = corpus(&[&[&[0, 1, 2]], &[&[0, 1]], &[&[0, 1, 3]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1]), 3);
        assert_eq!(stats.count(&[1, 2]), 0); // once only
        assert_eq!(stats.total_tokens, 8);
        assert_eq!(stats.max_len, 2);
    }

    #[test]
    fn trigram_requires_frequent_constituents() {
        // "a b c" twice, support 2: both "a b" and "b c" reach 2, so the
        // trigram is counted and frequent.
        let c = corpus(&[&[&[0, 1, 2]], &[&[0, 1, 2]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1, 2]), 2);
        assert_eq!(stats.max_len, 3);
        // Nothing of length 4 exists.
        assert_eq!(stats.count(&[0, 1, 2, 0]), 0);
    }

    #[test]
    fn phrases_never_cross_chunk_boundaries() {
        // "a b" always split across chunks -> never counted.
        let c = corpus(&[&[&[0], &[1]], &[&[0], &[1]], &[&[0], &[1]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1]), 0);
        assert_eq!(stats.n_frequent_ngrams(), 0);
        // Unigrams still counted.
        assert_eq!(stats.count(&[0]), 3);
    }

    #[test]
    fn min_support_filters_candidates() {
        let c = corpus(&[&[&[0, 1]], &[&[0, 1]], &[&[2, 3]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert!(stats.is_frequent(&[0, 1]));
        assert!(!stats.is_frequent(&[2, 3]));
        assert_eq!(stats.n_frequent_ngrams(), 1);
    }

    #[test]
    fn overlapping_occurrences_count_per_position() {
        // "a a a a": bigram "a a" occurs at 3 positions.
        let c = corpus(&[&[&[0, 0, 0, 0]], &[&[0, 0, 0, 0]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 0]), 6);
        assert_eq!(stats.count(&[0, 0, 0]), 4);
        assert_eq!(stats.count(&[0, 0, 0, 0]), 2);
    }

    #[test]
    fn max_phrase_len_caps_levels() {
        let c = corpus(&[&[&[0, 1, 2, 3]], &[&[0, 1, 2, 3]]]);
        let cfg = MinerConfig {
            min_support: 2,
            max_phrase_len: 2,
            ..MinerConfig::default()
        };
        let stats = FrequentPhraseMiner::with_config(cfg).mine(&c);
        assert_eq!(stats.max_len, 2);
        assert_eq!(stats.count(&[0, 1, 2]), 0);
        assert_eq!(stats.count(&[0, 1]), 2);
    }

    #[test]
    fn doc_pruning_does_not_change_result() {
        let docs: &[&[&[u32]]] = &[
            &[&[0, 1, 2, 0, 1]],
            &[&[5, 6], &[0, 1]],
            &[&[7, 8, 9]],
            &[&[0, 1, 2]],
        ];
        let c = corpus(docs);
        let with = FrequentPhraseMiner::new(2).mine(&c);
        let without = FrequentPhraseMiner::with_config(MinerConfig {
            min_support: 2,
            disable_doc_pruning: true,
            ..MinerConfig::default()
        })
        .mine(&c);
        assert_eq!(with.ngram_counts, without.ngram_counts);
        assert_eq!(with.max_len, without.max_len);
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = lcg_corpus(64, 4, 12, 7, 42);
        let seq = FrequentPhraseMiner::new(4).mine(&c);
        let par = FrequentPhraseMiner::with_config(MinerConfig {
            min_support: 4,
            n_threads: 4,
            ..MinerConfig::default()
        })
        .mine(&c);
        assert_eq!(seq.ngram_counts, par.ngram_counts);
        assert_eq!(seq.unigram_counts, par.unigram_counts);
    }

    #[test]
    fn matches_naive_reference() {
        let mut docs: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut x = 7u64;
        for _ in 0..40 {
            let mut doc = Vec::new();
            for _ in 0..3 {
                let mut chunk = Vec::new();
                for _ in 0..10 {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    chunk.push(((x >> 33) % 5) as u32);
                }
                doc.push(chunk);
            }
            docs.push(doc);
        }
        let doc_slices: Vec<Vec<&[u32]>> = docs
            .iter()
            .map(|d| d.iter().map(|c| c.as_slice()).collect())
            .collect();
        let doc_refs: Vec<&[&[u32]]> = doc_slices.iter().map(|d| d.as_slice()).collect();
        let c = corpus(&doc_refs);
        let stats = FrequentPhraseMiner::new(3).mine(&c);
        let naive = naive_frequent_phrases(&c, 3, 32);
        assert_eq!(stats.ngram_counts, naive);
    }

    #[test]
    fn legacy_engine_matches_prefix_engine() {
        let c = lcg_corpus(48, 3, 14, 6, 9001);
        for min_support in [1u64, 3, 5] {
            let miner = FrequentPhraseMiner::new(min_support);
            let new = miner.mine(&c);
            let old = miner.mine_legacy(&c);
            assert_eq!(new.unigram_counts, old.unigram_counts);
            assert_eq!(new.ngram_counts, old.ngram_counts);
            assert_eq!(new.max_len, old.max_len);
            assert_eq!(new.total_tokens, old.total_tokens);
        }
    }

    #[test]
    fn telemetry_levels_are_consistent() {
        let c = lcg_corpus(32, 2, 16, 5, 77);
        let (stats, tel) = FrequentPhraseMiner::new(3).mine_with_telemetry(&c);
        assert!(!tel.levels.is_empty());
        // Levels are consecutive starting at 2.
        for (i, l) in tel.levels.iter().enumerate() {
            assert_eq!(l.level as usize, i + 2);
            assert!(l.frequent <= l.candidates);
            assert!(l.candidates <= l.occurrences);
            assert!(l.docs_out <= l.docs_in);
        }
        // Total frequent multiword phrases match the stats map.
        assert_eq!(tel.frequent(), stats.n_frequent_ngrams() as u64);
        assert!(tel.total_nanos > 0);
    }

    #[test]
    fn empty_corpus_and_empty_docs() {
        let c = corpus(&[&[], &[&[]]]);
        let stats = FrequentPhraseMiner::new(1).mine(&c);
        assert_eq!(stats.total_tokens, 0);
        assert_eq!(stats.n_frequent_ngrams(), 0);
    }

    #[test]
    fn downward_closure_holds() {
        let c = corpus(&[
            &[&[0, 1, 2, 3, 0, 1, 2, 3]],
            &[&[0, 1, 2, 3]],
            &[&[1, 2, 3, 0]],
        ]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        stats.check_downward_closure().unwrap();
    }
}
