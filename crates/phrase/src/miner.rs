//! Frequent phrase mining — the paper's Algorithm 1.
//!
//! An increasing-size sliding window over the corpus counts candidate
//! phrases level by level (bigrams, trigrams, ...). Two prunes keep the
//! candidate space sparse:
//!
//! * **Position-based Apriori pruning** (downward closure): a list of
//!   *active indices* per document records the positions whose length-(n−1)
//!   phrase is frequent; a length-n candidate at position `i` is counted only
//!   if both `i` and `i+1` are active — i.e. both constituent (n−1)-grams are
//!   frequent.
//! * **Data antimonotonicity**: a document whose active index set becomes
//!   empty can never again produce a frequent phrase and is dropped from all
//!   further levels, giving the algorithm a natural termination criterion.
//!
//! Documents are additionally *chunked* at phrase-invariant punctuation
//! (paper §4.1): no candidate may cross a chunk boundary, which bounds the
//! per-document work by the (constant) chunk size and makes the whole miner
//! effectively linear in corpus size.

use crate::counter::{Phrase, PhraseStats};
use topmine_corpus::{Corpus, Document};
use topmine_util::FxHashMap;

/// Configuration for [`FrequentPhraseMiner`].
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum support ε: a phrase is frequent iff its count reaches this.
    pub min_support: u64,
    /// Hard cap on phrase length; `0` means unbounded (terminate naturally).
    pub max_phrase_len: usize,
    /// Worker threads for the counting passes; `1` runs sequentially.
    pub n_threads: usize,
    /// Disable the data-antimonotonicity document drop (ablation knob; the
    /// result is identical, only slower).
    pub disable_doc_pruning: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 5,
            max_phrase_len: 0,
            n_threads: 1,
            disable_doc_pruning: false,
        }
    }
}

/// The Algorithm 1 miner.
#[derive(Debug, Clone, Default)]
pub struct FrequentPhraseMiner {
    config: MinerConfig,
}

/// Per-document mining state: the active indices of the current level and
/// the (lazily built) chunk-limit table.
struct DocState {
    doc_idx: usize,
    /// Sorted positions whose current-level (n−1)-gram is frequent and fits
    /// inside its chunk.
    active: Vec<u32>,
    /// `limit[i]` = exclusive end of the chunk containing position `i`.
    limit: Vec<u32>,
}

impl FrequentPhraseMiner {
    pub fn new(min_support: u64) -> Self {
        Self {
            config: MinerConfig {
                min_support,
                ..MinerConfig::default()
            },
        }
    }

    pub fn with_config(config: MinerConfig) -> Self {
        assert!(config.min_support >= 1, "min support must be at least 1");
        Self { config }
    }

    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Run Algorithm 1 over `corpus`, returning all aggregate counts.
    pub fn mine(&self, corpus: &Corpus) -> PhraseStats {
        let eps = self.config.min_support.max(1);

        // Level 1: dense unigram counts (the paper's line 3).
        let mut unigram_counts = vec![0u64; corpus.vocab.len()];
        let mut total_tokens = 0u64;
        for doc in &corpus.docs {
            total_tokens += doc.tokens.len() as u64;
            for &t in &doc.tokens {
                unigram_counts[t as usize] += 1;
            }
        }

        let mut stats = PhraseStats {
            unigram_counts,
            ngram_counts: FxHashMap::default(),
            total_tokens,
            min_support: eps,
            max_len: 1,
        };

        // Initialize per-document active sets (line 2): every position whose
        // unigram is frequent.
        let mut states: Vec<DocState> = corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(doc_idx, doc)| DocState {
                doc_idx,
                active: (0..doc.tokens.len() as u32)
                    .filter(|&i| stats.unigram_counts[doc.tokens[i as usize] as usize] >= eps)
                    .collect(),
                limit: chunk_limits(doc),
            })
            .collect();
        states.retain(|s| !s.active.is_empty() || self.config.disable_doc_pruning);

        let mut n = 2usize; // current candidate length (line 4)
        while !states.is_empty() {
            if self.config.max_phrase_len != 0 && n > self.config.max_phrase_len {
                break;
            }
            // Count level-n candidates (lines 12-15).
            let level_counts = if self.config.n_threads > 1 {
                count_level_parallel(corpus, &states, n, self.config.n_threads)
            } else {
                let mut counts = FxHashMap::default();
                for st in &states {
                    count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut counts);
                }
                counts
            };

            // Prune to frequent phrases (line 22's filter, applied per level).
            let mut any_frequent = false;
            for (phrase, count) in level_counts {
                if count >= eps {
                    stats.ngram_counts.insert(phrase, count);
                    any_frequent = true;
                }
            }
            if !any_frequent {
                break;
            }
            stats.max_len = n;

            // Advance active indices (line 7) and drop exhausted documents
            // (lines 9-10, data antimonotonicity).
            for st in &mut states {
                let doc = &corpus.docs[st.doc_idx];
                let ng = &stats.ngram_counts;
                st.active.retain(|&i| {
                    let i = i as usize;
                    i + n <= st.limit[i] as usize
                        && ng.get(&doc.tokens[i..i + n]).is_some_and(|&c| c >= eps)
                });
            }
            if !self.config.disable_doc_pruning {
                states.retain(|s| !s.active.is_empty());
            } else {
                // Keep documents alive but stop once *all* are exhausted.
                if states.iter().all(|s| s.active.is_empty()) {
                    break;
                }
            }
            n += 1;
        }

        debug_assert!(stats.check_downward_closure().is_ok());
        stats
    }
}

/// Build the chunk-limit table: `limit[i]` is the exclusive end of the chunk
/// containing token `i`.
fn chunk_limits(doc: &Document) -> Vec<u32> {
    let mut limit = vec![0u32; doc.tokens.len()];
    for (start, end) in doc.chunk_ranges() {
        for l in &mut limit[start..end] {
            *l = end as u32;
        }
    }
    limit
}

/// Count all level-`n` candidate occurrences of one document into `counts`.
///
/// A candidate at active position `i` is counted iff `i+1` is also active
/// (both constituent (n−1)-grams frequent — downward closure) and the n-gram
/// fits inside `i`'s chunk.
fn count_level_doc(doc: &Document, st: &DocState, n: usize, counts: &mut FxHashMap<Phrase, u64>) {
    let active = &st.active;
    for w in active.windows(2) {
        let (i, j) = (w[0] as usize, w[1] as usize);
        if j != i + 1 {
            continue; // not adjacent: prefix or suffix (n−1)-gram infrequent
        }
        if i + n > st.limit[i] as usize {
            continue; // would cross a chunk boundary
        }
        let window = &doc.tokens[i..i + n];
        if let Some(c) = counts.get_mut(window) {
            *c += 1;
        } else {
            counts.insert(window.to_vec().into_boxed_slice(), 1);
        }
    }
}

/// Map-reduce version of the counting pass: documents are sharded across
/// `n_threads` scoped threads with thread-local counters that are merged.
fn count_level_parallel(
    corpus: &Corpus,
    states: &[DocState],
    n: usize,
    n_threads: usize,
) -> FxHashMap<Phrase, u64> {
    let n_threads = n_threads.min(states.len().max(1));
    if n_threads <= 1 {
        let mut counts = FxHashMap::default();
        for st in states {
            count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut counts);
        }
        return counts;
    }
    let chunk_size = states.len().div_ceil(n_threads);
    let locals: Vec<FxHashMap<Phrase, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .chunks(chunk_size)
            .map(|shard| {
                scope.spawn(move || {
                    let mut local = FxHashMap::default();
                    for st in shard {
                        count_level_doc(&corpus.docs[st.doc_idx], st, n, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mining worker panicked"))
            .collect()
    });

    // Merge into the largest map to minimize rehashing.
    let mut iter = locals.into_iter();
    let mut merged = iter.next().unwrap_or_default();
    for local in iter {
        if local.len() > merged.len() {
            let small = std::mem::replace(&mut merged, local);
            for (k, v) in small {
                *merged.entry(k).or_insert(0) += v;
            }
        } else {
            for (k, v) in local {
                *merged.entry(k).or_insert(0) += v;
            }
        }
    }
    merged
}

/// Reference miner used by tests: enumerate every within-chunk n-gram
/// (2 ≤ n ≤ `max_len`), count by type, and keep those meeting support.
/// Quadratic and allocation-happy, but obviously correct.
pub fn naive_frequent_phrases(
    corpus: &Corpus,
    min_support: u64,
    max_len: usize,
) -> FxHashMap<Phrase, u64> {
    let mut all: FxHashMap<Phrase, u64> = FxHashMap::default();
    for doc in &corpus.docs {
        for chunk in doc.chunks() {
            for n in 2..=max_len.min(chunk.len()) {
                for window in chunk.windows(n) {
                    *all.entry(window.to_vec().into_boxed_slice()).or_insert(0) += 1;
                }
            }
        }
    }
    all.retain(|_, c| *c >= min_support);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use topmine_corpus::Vocab;

    /// Corpus of integer token docs; one chunk per inner slice group.
    fn corpus(docs: &[&[&[u32]]]) -> Corpus {
        let mut max_id = 0u32;
        for d in docs {
            for c in *d {
                for &t in *c {
                    max_id = max_id.max(t);
                }
            }
        }
        let mut vocab = Vocab::new();
        for i in 0..=max_id {
            vocab.intern(&format!("w{i}"));
        }
        Corpus {
            vocab,
            docs: docs
                .iter()
                .map(|d| Document::from_chunks(d.iter().copied()))
                .collect(),
            provenance: None,
            unstem: None,
        }
    }

    #[test]
    fn counts_simple_bigrams() {
        // "a b" appears 3 times; support 2.
        let c = corpus(&[&[&[0, 1, 2]], &[&[0, 1]], &[&[0, 1, 3]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1]), 3);
        assert_eq!(stats.count(&[1, 2]), 0); // once only
        assert_eq!(stats.total_tokens, 8);
        assert_eq!(stats.max_len, 2);
    }

    #[test]
    fn trigram_requires_frequent_constituents() {
        // "a b c" twice, support 2: both "a b" and "b c" reach 2, so the
        // trigram is counted and frequent.
        let c = corpus(&[&[&[0, 1, 2]], &[&[0, 1, 2]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1, 2]), 2);
        assert_eq!(stats.max_len, 3);
        // Nothing of length 4 exists.
        assert_eq!(stats.count(&[0, 1, 2, 0]), 0);
    }

    #[test]
    fn phrases_never_cross_chunk_boundaries() {
        // "a b" always split across chunks -> never counted.
        let c = corpus(&[&[&[0], &[1]], &[&[0], &[1]], &[&[0], &[1]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 1]), 0);
        assert_eq!(stats.n_frequent_ngrams(), 0);
        // Unigrams still counted.
        assert_eq!(stats.count(&[0]), 3);
    }

    #[test]
    fn min_support_filters_candidates() {
        let c = corpus(&[&[&[0, 1]], &[&[0, 1]], &[&[2, 3]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert!(stats.is_frequent(&[0, 1]));
        assert!(!stats.is_frequent(&[2, 3]));
        assert_eq!(stats.n_frequent_ngrams(), 1);
    }

    #[test]
    fn overlapping_occurrences_count_per_position() {
        // "a a a a": bigram "a a" occurs at 3 positions.
        let c = corpus(&[&[&[0, 0, 0, 0]], &[&[0, 0, 0, 0]]]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        assert_eq!(stats.count(&[0, 0]), 6);
        assert_eq!(stats.count(&[0, 0, 0]), 4);
        assert_eq!(stats.count(&[0, 0, 0, 0]), 2);
    }

    #[test]
    fn max_phrase_len_caps_levels() {
        let c = corpus(&[&[&[0, 1, 2, 3]], &[&[0, 1, 2, 3]]]);
        let cfg = MinerConfig {
            min_support: 2,
            max_phrase_len: 2,
            ..MinerConfig::default()
        };
        let stats = FrequentPhraseMiner::with_config(cfg).mine(&c);
        assert_eq!(stats.max_len, 2);
        assert_eq!(stats.count(&[0, 1, 2]), 0);
        assert_eq!(stats.count(&[0, 1]), 2);
    }

    #[test]
    fn doc_pruning_does_not_change_result() {
        let docs: &[&[&[u32]]] = &[
            &[&[0, 1, 2, 0, 1]],
            &[&[5, 6], &[0, 1]],
            &[&[7, 8, 9]],
            &[&[0, 1, 2]],
        ];
        let c = corpus(docs);
        let with = FrequentPhraseMiner::new(2).mine(&c);
        let without = FrequentPhraseMiner::with_config(MinerConfig {
            min_support: 2,
            disable_doc_pruning: true,
            ..MinerConfig::default()
        })
        .mine(&c);
        assert_eq!(with.ngram_counts, without.ngram_counts);
        assert_eq!(with.max_len, without.max_len);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Deterministic pseudo-random corpus with heavy repetition.
        let mut docs: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut x = 42u64;
        for _ in 0..64 {
            let mut doc = Vec::new();
            for _ in 0..4 {
                let mut chunk = Vec::new();
                for _ in 0..12 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    chunk.push(((x >> 33) % 7) as u32);
                }
                doc.push(chunk);
            }
            docs.push(doc);
        }
        let doc_slices: Vec<Vec<&[u32]>> = docs
            .iter()
            .map(|d| d.iter().map(|c| c.as_slice()).collect())
            .collect();
        let doc_refs: Vec<&[&[u32]]> = doc_slices.iter().map(|d| d.as_slice()).collect();
        let c = corpus(&doc_refs);
        let seq = FrequentPhraseMiner::new(4).mine(&c);
        let par = FrequentPhraseMiner::with_config(MinerConfig {
            min_support: 4,
            n_threads: 4,
            ..MinerConfig::default()
        })
        .mine(&c);
        assert_eq!(seq.ngram_counts, par.ngram_counts);
        assert_eq!(seq.unigram_counts, par.unigram_counts);
    }

    #[test]
    fn matches_naive_reference() {
        let mut docs: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut x = 7u64;
        for _ in 0..40 {
            let mut doc = Vec::new();
            for _ in 0..3 {
                let mut chunk = Vec::new();
                for _ in 0..10 {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    chunk.push(((x >> 33) % 5) as u32);
                }
                doc.push(chunk);
            }
            docs.push(doc);
        }
        let doc_slices: Vec<Vec<&[u32]>> = docs
            .iter()
            .map(|d| d.iter().map(|c| c.as_slice()).collect())
            .collect();
        let doc_refs: Vec<&[&[u32]]> = doc_slices.iter().map(|d| d.as_slice()).collect();
        let c = corpus(&doc_refs);
        let stats = FrequentPhraseMiner::new(3).mine(&c);
        let naive = naive_frequent_phrases(&c, 3, 32);
        assert_eq!(stats.ngram_counts, naive);
    }

    #[test]
    fn empty_corpus_and_empty_docs() {
        let c = corpus(&[&[], &[&[]]]);
        let stats = FrequentPhraseMiner::new(1).mine(&c);
        assert_eq!(stats.total_tokens, 0);
        assert_eq!(stats.n_frequent_ngrams(), 0);
    }

    #[test]
    fn downward_closure_holds() {
        let c = corpus(&[
            &[&[0, 1, 2, 3, 0, 1, 2, 3]],
            &[&[0, 1, 2, 3]],
            &[&[1, 2, 3, 0]],
        ]);
        let stats = FrequentPhraseMiner::new(2).mine(&c);
        stats.check_downward_closure().unwrap();
    }
}
