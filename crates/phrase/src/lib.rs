//! Phrase mining for ToPMine (paper §4).
//!
//! Two stages, exactly as the paper structures them:
//!
//! 1. **Frequent phrase mining** ([`miner`], paper Algorithm 1): collect
//!    aggregate counts `C(P)` of every contiguous phrase meeting a minimum
//!    support `ε`, using *position-based Apriori pruning* (active indices)
//!    and *data antimonotonicity* (documents that produce no frequent
//!    n-grams are dropped before level n+1).
//! 2. **Phrase construction / segmentation** ([`construction`], Algorithm 2):
//!    per document, greedily merge the adjacent pair of phrase instances with
//!    the highest **significance** ([`significance()`], Eq. 1) until no merge
//!    reaches the threshold `α`; the surviving pieces partition the document
//!    into a *bag of phrases*.
//!
//! [`segmenter`] wires both stages over a whole corpus and produces the
//! [`Segmentation`] consumed by PhraseLDA.

pub mod construction;
pub mod counter;
pub mod miner;
pub mod prefix;
pub mod segmenter;
pub mod significance;

pub use construction::{
    construct_chunk, construct_chunk_into, ChunkPartition, ConstructScratch, MergeTrace,
    PhraseConstructor,
};
pub use counter::{Phrase, PhraseCounts, PhraseStats};
pub use miner::{FrequentPhraseMiner, MinerConfig};
pub use prefix::U64Map;
pub use segmenter::{Segmentation, SegmentedDoc, Segmenter, SegmenterConfig};
pub use significance::{significance, significance_pmi};
pub use topmine_obs::{MiningLevel, MiningTelemetry};
