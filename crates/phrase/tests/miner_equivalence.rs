//! The prefix-id mining contract, enforced: the production engine
//! ([`FrequentPhraseMiner::mine`] — packed `(prefix_id, next_word)` keys in
//! open-addressing tables, work-queue scheduling, deterministic sharded
//! merge) produces a `PhraseStats` **identical** to the seed-era hashmap
//! miner ([`FrequentPhraseMiner::mine_legacy`]) — unigram vector bit-equal,
//! multiword map set-equal — on every configuration, at every thread count.
//!
//! Property-tested over corpus shape, `min_support`, `max_phrase_len` caps,
//! and the `disable_doc_pruning` ablation knob, with thread counts
//! {1, 2, 3, 7} like `parallel_determinism.rs` does for the sampler.

use proptest::prelude::*;
use topmine_corpus::{Corpus, Document, Vocab};
use topmine_phrase::miner::naive_frequent_phrases;
use topmine_phrase::{FrequentPhraseMiner, MinerConfig};

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic corpus with a small vocabulary (heavy repetition → deep
/// levels), variable chunking, and occasional empty chunks/documents.
fn random_corpus(seed: u64, n_docs: usize, vocab_size: u64) -> Corpus {
    let mut s = seed;
    let mut vocab = Vocab::new();
    for i in 0..vocab_size {
        vocab.intern(&format!("w{i}"));
    }
    let mut docs = Vec::new();
    for _ in 0..n_docs {
        let n_chunks = (splitmix(&mut s) % 4) as usize; // may be 0: empty doc
        let mut chunks: Vec<Vec<u32>> = Vec::new();
        for _ in 0..n_chunks {
            let len = (splitmix(&mut s) % 13) as usize; // may be 0: empty chunk
            chunks.push(
                (0..len)
                    .map(|_| (splitmix(&mut s) % vocab_size) as u32)
                    .collect(),
            );
        }
        docs.push(Document::from_chunks(chunks.iter().map(Vec::as_slice)));
    }
    Corpus {
        vocab,
        docs,
        provenance: None,
        unstem: None,
    }
}

fn assert_stats_equal(
    config: &MinerConfig,
    corpus: &Corpus,
    threads: usize,
) -> Result<(), TestCaseError> {
    let legacy = FrequentPhraseMiner::with_config(MinerConfig {
        n_threads: 1,
        ..config.clone()
    })
    .mine_legacy(corpus);
    let miner = FrequentPhraseMiner::with_config(MinerConfig {
        n_threads: threads,
        ..config.clone()
    });
    let (stats, tel) = miner.mine_with_telemetry(corpus);
    prop_assert_eq!(
        &stats.unigram_counts,
        &legacy.unigram_counts,
        "unigrams diverged at {} threads",
        threads
    );
    prop_assert_eq!(
        &stats.ngram_counts,
        &legacy.ngram_counts,
        "ngram map diverged at {} threads (cfg {:?})",
        threads,
        config
    );
    prop_assert_eq!(stats.max_len, legacy.max_len);
    prop_assert_eq!(stats.total_tokens, legacy.total_tokens);
    prop_assert_eq!(stats.min_support, legacy.min_support);
    // Telemetry must agree with the result it describes.
    prop_assert_eq!(tel.frequent(), stats.n_frequent_ngrams() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: prefix-id mining ≡ legacy hashmap mining at
    /// thread counts {1, 2, 3, 7}, across support thresholds, length caps,
    /// and the doc-pruning ablation.
    #[test]
    fn prefix_engine_equals_legacy_engine(
        corpus_seed in 0u64..1_000_000,
        n_docs in 1usize..48,
        vocab_size in 2u64..9,
        min_support in 1u64..7,
        max_phrase_len in 0usize..6,
        prune_flag in 0u32..2,
    ) {
        let corpus = random_corpus(corpus_seed, n_docs, vocab_size);
        let config = MinerConfig {
            min_support,
            max_phrase_len,
            n_threads: 1,
            disable_doc_pruning: prune_flag == 1,
        };
        for threads in [1usize, 2, 3, 7] {
            assert_stats_equal(&config, &corpus, threads)?;
        }
    }

    /// Cross-check both engines against the quadratic enumerate-everything
    /// reference when the length cap is inactive.
    #[test]
    fn both_engines_match_naive_reference(
        corpus_seed in 0u64..1_000_000,
        n_docs in 1usize..32,
        vocab_size in 2u64..6,
        min_support in 2u64..6,
    ) {
        let corpus = random_corpus(corpus_seed, n_docs, vocab_size);
        let naive = naive_frequent_phrases(&corpus, min_support, 64);
        let miner = FrequentPhraseMiner::new(min_support);
        prop_assert_eq!(&miner.mine(&corpus).ngram_counts, &naive);
        prop_assert_eq!(&miner.mine_legacy(&corpus).ngram_counts, &naive);
    }
}
