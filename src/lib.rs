//! Umbrella crate for the ToPMine reproduction workspace: re-exports
//! every member crate so the root examples and integration tests have one
//! import surface. See the README for the crate map.

pub use topmine;
pub use topmine_baselines as baselines;
pub use topmine_corpus as corpus;
pub use topmine_eval as eval;
pub use topmine_lda as lda;
pub use topmine_phrase as phrase;
pub use topmine_serve as serve;
pub use topmine_synth as synth;
pub use topmine_util as util;
